package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoroLeak enforces the project's goroutine-ownership discipline: every
// `go` statement must be visibly tied to a completion or cancellation
// mechanism — a WaitGroup/errgroup Done/Wait, a channel it sends on or
// closes, or a context it watches. An untethered goroutine is the
// classic slow leak: it outlives the request that spawned it, holds
// cube memory, and surfaces only as an unexplained inflight gauge in
// production. The daemon's shard workers, the snapshot checkpointer and
// the engine's lazy builders all follow the tether pattern; this keeps
// new `go` statements from regressing it.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "every go statement must be tied to a WaitGroup, a channel send/close, or a context so the goroutine cannot leak",
	Skip: func(pkgPath string) bool {
		// Test-only packages spawn short-lived helpers freely.
		return strings.HasSuffix(pkgPath, "_test")
	},
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if goStmtTethered(p, g) {
					return true
				}
				p.Reportf(g.Pos(), "goroutine has no visible completion tether; tie it to a WaitGroup (Done/Wait), send on or close a channel, or watch a context")
				return true
			})
		}
	},
}

// goStmtTethered reports whether the go statement is visibly tied to a
// completion mechanism.
func goStmtTethered(p *Pass, g *ast.GoStmt) bool {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		return funcLitTethered(p, lit)
	}
	// Named function (or method/bound call): accept when any argument —
	// or the method receiver — is a context, channel, WaitGroup or
	// errgroup-like value; the callee owns the tether.
	if tetherExpr(p, g.Call.Fun) {
		return true
	}
	for _, arg := range g.Call.Args {
		if tetherExpr(p, arg) {
			return true
		}
	}
	return false
}

// funcLitTethered scans a goroutine body for any tether: a Done/Wait
// call on a WaitGroup-like value, a channel send, a close(), a channel
// receive/select, or any use of a context value.
func funcLitTethered(p *Pass, lit *ast.FuncLit) bool {
	tethered := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if tethered {
			return false
		}
		switch s := n.(type) {
		case *ast.SendStmt:
			tethered = true
			return false
		case *ast.UnaryExpr:
			// <-ch receive counts: the goroutine blocks on a channel the
			// spawner controls.
			if s.Op.String() == "<-" {
				tethered = true
				return false
			}
		case *ast.CallExpr:
			if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "close" {
				tethered = true
				return false
			}
			if sel, ok := s.Fun.(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Done" || sel.Sel.Name == "Wait" {
					tethered = true
					return false
				}
			}
		case ast.Expr:
			if tetherExpr(p, s) {
				tethered = true
				return false
			}
		}
		return true
	})
	return tethered
}

// tetherExpr reports whether expr's static type is a tether carrier: a
// context.Context, a channel, a *sync.WaitGroup, or a pointer to a
// struct embedding one (errgroup-style).
func tetherExpr(p *Pass, expr ast.Expr) bool {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	return isTetherType(tv.Type, 0)
}

func isTetherType(t types.Type, depth int) bool {
	if depth > 2 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Pointer:
		return isTetherType(u.Elem(), depth+1)
	case *types.Interface:
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
				return true
			}
		}
	case *types.Struct:
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
				return true
			}
			// errgroup-style: a named struct type called Group with a Wait
			// method is a tether carrier.
			if obj.Name() == "Group" {
				return true
			}
		}
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if f.Embedded() && isTetherType(f.Type(), depth+1) {
				return true
			}
		}
	}
	return false
}
