package lint_test

import (
	"path/filepath"
	"regexp"
	"testing"

	"opmap/internal/lint"
)

// The golden tests run each analyzer over a pair of testdata packages:
// testdata/src/<analyzer>/bad must produce exactly the diagnostics
// declared by `// want` comments (same file, same line, message
// matching the backquoted regexp), and testdata/src/<analyzer>/good
// must produce none. The allowlist is deliberately nil here so the
// analyzers are tested raw.

var goldenCases = []struct {
	name     string
	analyzer *lint.Analyzer
}{
	{"floatcmp", lint.FloatCmp},
	{"seededrand", lint.SeededRand},
	{"panicfree", lint.PanicFree},
	{"locksafe", lint.LockSafe},
	{"apidoc", lint.APIDoc},
	{"ctxrule", lint.CtxRule},
	{"cubeaccess", lint.CubeAccess},
	{"ctxloop", lint.CtxLoop},
	{"goroleak", lint.GoroLeak},
	{"errclose", lint.ErrClose},
	{"metricname", lint.MetricName},
	{"exhaustive", lint.Exhaustive},
}

// wantRe extracts the expectation regexp from a `// want` comment.
var wantRe = regexp.MustCompile("//\\s*want\\s+`([^`]+)`")

type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	used bool
	raw  string
}

// collectWants scans the package's comments for `// want` markers.
func collectWants(t *testing.T, pkg *lint.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Slash)
				wants = append(wants, &expectation{
					file: filepath.Base(pos.Filename),
					line: pos.Line,
					re:   re,
					raw:  m[1],
				})
			}
		}
	}
	return wants
}

func TestAnalyzersGolden(t *testing.T) {
	loader := lint.NewLoader()
	for _, tc := range goldenCases {
		for _, kind := range []string{"bad", "good"} {
			t.Run(tc.name+"/"+kind, func(t *testing.T) {
				dir := filepath.Join("testdata", "src", tc.name, kind)
				pkg, err := loader.Load(tc.name+"/"+kind, dir, nil)
				if err != nil {
					t.Fatalf("loading %s: %v", dir, err)
				}
				if tc.analyzer.Skip != nil && tc.analyzer.Skip(pkg.Path) {
					t.Fatalf("analyzer %s skips its own testdata package %q", tc.analyzer.Name, pkg.Path)
				}
				diags := lint.Run(pkg, []*lint.Analyzer{tc.analyzer}, nil)
				wants := collectWants(t, pkg)

				if kind == "good" {
					if len(wants) != 0 {
						t.Fatalf("good package must not contain want comments, found %d", len(wants))
					}
					for _, d := range diags {
						t.Errorf("unexpected diagnostic on good package: %s", d)
					}
					return
				}

				if len(wants) == 0 {
					t.Fatal("bad package has no want comments; the golden test would be vacuous")
				}
			diag:
				for _, d := range diags {
					base := filepath.Base(d.Pos.Filename)
					for _, w := range wants {
						if !w.used && w.file == base && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
							w.used = true
							continue diag
						}
					}
					t.Errorf("unexpected diagnostic: %s", d)
				}
				for _, w := range wants {
					if !w.used {
						t.Errorf("expected diagnostic not reported: %s:%d: %s", w.file, w.line, w.raw)
					}
				}
			})
		}
	}
}

// TestAnalyzerMetadata keeps the registry coherent: every analyzer is
// registered in All with a unique name and a doc string.
func TestAnalyzerMetadata(t *testing.T) {
	if len(lint.All) != len(goldenCases) {
		t.Fatalf("lint.All has %d analyzers, golden tests cover %d", len(lint.All), len(goldenCases))
	}
	seen := map[string]bool{}
	for _, a := range lint.All {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v is missing Name or Doc", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, tc := range goldenCases {
		if !seen[tc.name] {
			t.Errorf("golden case %q does not match a registered analyzer", tc.name)
		}
	}
}

// TestAPIDocSkip pins the package-path policy: only the public root
// package is subject to apidoc; internal, cmd and examples trees are
// not part of the importable API surface.
func TestAPIDocSkip(t *testing.T) {
	cases := []struct {
		path string
		skip bool
	}{
		{"opmap", false},
		{"opmap/internal/stats", true},
		{"opmap/cmd/opmap", true},
		{"opmap/examples/casestudy", true},
		{"apidoc/bad", false},
	}
	for _, c := range cases {
		if got := lint.APIDoc.Skip(c.path); got != c.skip {
			t.Errorf("APIDoc.Skip(%q) = %v, want %v", c.path, got, c.skip)
		}
	}
}

// TestAllowlistEntries enforces the allowlist policy: every entry
// names a real analyzer and carries a written justification.
func TestAllowlistEntries(t *testing.T) {
	names := map[string]bool{}
	for _, a := range lint.All {
		names[a.Name] = true
	}
	for i, e := range lint.Allowlist {
		if !names[e.Analyzer] {
			t.Errorf("Allowlist[%d] references unknown analyzer %q", i, e.Analyzer)
		}
		if e.Package == "" || e.Symbol == "" {
			t.Errorf("Allowlist[%d] (%s) must name a package and symbol", i, e.Analyzer)
		}
		if e.Reason == "" {
			t.Errorf("Allowlist[%d] (%s %s.%s) has no Reason; suppressions must be justified", i, e.Analyzer, e.Package, e.Symbol)
		}
	}
}

// TestAllowlistSuppresses proves the allow mechanism works end to end:
// the panicfree bad package goes quiet when its findings are allowed.
func TestAllowlistSuppresses(t *testing.T) {
	loader := lint.NewLoader()
	pkg, err := loader.Load("panicfree/bad", filepath.Join("testdata", "src", "panicfree", "bad"), nil)
	if err != nil {
		t.Fatalf("loading panicfree/bad: %v", err)
	}
	allow := []lint.Allow{
		{Analyzer: "panicfree", Package: "panicfree/bad", Symbol: "Parse", Reason: "test"},
		{Analyzer: "panicfree", Package: "panicfree/bad", Symbol: "At", Reason: "test"},
	}
	if diags := lint.Run(pkg, []*lint.Analyzer{lint.PanicFree}, allow); len(diags) != 0 {
		t.Errorf("allowlisted package still reports %d diagnostics: %v", len(diags), diags)
	}
	// A wrong symbol must not suppress anything.
	partial := []lint.Allow{{Analyzer: "panicfree", Package: "panicfree/bad", Symbol: "Other", Reason: "test"}}
	if diags := lint.Run(pkg, []*lint.Analyzer{lint.PanicFree}, partial); len(diags) != 2 {
		t.Errorf("mismatched allow entry suppressed diagnostics: got %d, want 2", len(diags))
	}
}

// TestDiagnosticString pins the compiler-style rendering editors rely
// on for jump-to-position.
func TestDiagnosticString(t *testing.T) {
	d := lint.Diagnostic{Analyzer: "floatcmp", Message: "msg"}
	d.Pos.Filename = "x.go"
	d.Pos.Line = 3
	d.Pos.Column = 7
	if got, want := d.String(), "x.go:3:7: floatcmp: msg"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
