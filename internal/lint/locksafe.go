package lint

import (
	"go/ast"
	"go/types"
)

// LockSafe flags by-value copies of structs that contain a sync.Mutex
// or sync.RWMutex. The rulecube parallel store builder and the session
// layer guard shared state with mutexes; copying such a struct forks
// the lock while sharing the data, which is exactly the kind of race
// `go vet` catches only partially and the race detector only when the
// copy is exercised. Flagged sites: by-value receivers, parameters and
// results; assignments and variable initializers that copy an existing
// value; call arguments; range clauses; and return statements.
// Composite literals are creations, not copies, and are fine.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "flags by-value copies of structs containing sync.Mutex or sync.RWMutex",
	Run:  runLockSafe,
}

func runLockSafe(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkLockFields(p, n.Recv, "receiver")
				if n.Type.Params != nil {
					checkLockFields(p, n.Type.Params, "parameter")
				}
				if n.Type.Results != nil {
					checkLockFields(p, n.Type.Results, "result")
				}
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkLockCopy(p, rhs, "assignment copies")
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkLockCopy(p, v, "variable initializer copies")
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					checkLockCopy(p, arg, "call passes")
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					checkLockCopy(p, r, "return copies")
				}
			case *ast.RangeStmt:
				if n.Value == nil {
					return true
				}
				t := p.Info.TypeOf(n.Value)
				if name := lockName(t); name != "" {
					p.Reportf(n.Value.Pos(), "range clause copies a value containing %s by value; range over indices or pointers instead", name)
				}
			}
			return true
		})
	}
}

// checkLockFields reports fields of a receiver/param/result list whose
// declared (non-pointer) type contains a lock.
func checkLockFields(p *Pass, fields *ast.FieldList, role string) {
	if fields == nil {
		return
	}
	for _, field := range fields.List {
		t := p.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, ptr := t.Underlying().(*types.Pointer); ptr {
			continue
		}
		if name := lockName(t); name != "" {
			p.Reportf(field.Type.Pos(), "%s passes a value containing %s by value; use a pointer", role, name)
		}
	}
}

// checkLockCopy reports expressions that read an existing
// lock-containing value (identifiers, field selections, indexing,
// dereferences). Composite literals and function calls construct new
// values and are not copies of a live lock.
func checkLockCopy(p *Pass, e ast.Expr, what string) {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	case *ast.ParenExpr:
		checkLockCopy(p, e.(*ast.ParenExpr).X, what)
		return
	default:
		return
	}
	t := p.Info.TypeOf(e)
	if name := lockName(t); name != "" {
		p.Reportf(e.Pos(), "%s a value containing %s; use a pointer", what, name)
	}
}

// lockName returns the name of the sync lock type contained in t (by
// value, possibly nested in structs or arrays), or "" if none.
func lockName(t types.Type) string {
	return lockNameRec(t, make(map[types.Type]bool))
}

func lockNameRec(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex":
				return "sync." + obj.Name()
			}
		}
		return lockNameRec(named.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := lockNameRec(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockNameRec(u.Elem(), seen)
	}
	return ""
}
