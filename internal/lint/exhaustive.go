package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Exhaustive keeps enum switches honest: a switch over one of the
// project's enum types (DiscretizeMethod, faultinject.Kind, snapshot
// modes, trend kinds, ...) must either cover every declared constant or
// carry a default clause that fails loudly (returns an error or
// panics). Without this, adding an enum member compiles everywhere and
// silently misbehaves at the one switch someone forgot — the exact bug
// class the fault-injection Kind switch guards against by construction.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc:  "switches over project enum types must cover every constant or have a default that returns an error or panics",
	Skip: func(pkgPath string) bool { return false },
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				checkExhaustive(p, sw)
				return true
			})
		}
	},
}

// checkExhaustive validates one tagged switch when its tag is a project
// enum type.
func checkExhaustive(p *Pass, sw *ast.SwitchStmt) {
	tv, ok := p.Info.Types[sw.Tag]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || !isProjectEnumType(p, named) {
		return
	}
	members := enumMembers(named)
	if len(members) < 2 {
		return
	}
	covered := make(map[string]bool, len(members))
	hasDefault := false
	defaultOK := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			defaultOK = clauseFailsLoudly(cc)
			continue
		}
		for _, expr := range cc.List {
			etv, ok := p.Info.Types[expr]
			if !ok || etv.Value == nil {
				continue
			}
			covered[etv.Value.ExactString()] = true
		}
	}
	var missing []string
	for _, m := range members {
		if !covered[m.Val().ExactString()] {
			missing = append(missing, m.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	if hasDefault && defaultOK {
		return
	}
	if hasDefault {
		p.Reportf(sw.Pos(), "switch over %s is missing %s and its default clause neither returns an error nor panics", named.Obj().Name(), strings.Join(missing, ", "))
		return
	}
	p.Reportf(sw.Pos(), "switch over %s does not cover %s; add the missing cases or a default that returns an error or panics", named.Obj().Name(), strings.Join(missing, ", "))
}

// isProjectEnumType reports whether named is declared in this module
// (path "opmap" or a subpackage, or the package under analysis) with a
// basic integer/string underlying type.
func isProjectEnumType(p *Pass, named *types.Named) bool {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	info := basic.Info()
	if info&(types.IsInteger|types.IsString) == 0 {
		return false
	}
	path := obj.Pkg().Path()
	return path == "opmap" || strings.HasPrefix(path, "opmap/") || obj.Pkg() == p.Types
}

// enumMembers returns the package-level constants of exactly type named,
// in declaration order.
func enumMembers(named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	var members []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if types.Identical(c.Type(), named) {
			members = append(members, c)
		}
	}
	return members
}

// clauseFailsLoudly reports whether the clause (transitively) returns
// or panics, i.e. cannot silently fall through to the code after the
// switch.
func clauseFailsLoudly(cc *ast.CaseClause) bool {
	loud := false
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if loud {
				return false
			}
			switch s := n.(type) {
			case *ast.ReturnStmt:
				loud = true
				return false
			case *ast.CallExpr:
				if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "panic" {
					loud = true
					return false
				}
			case *ast.FuncLit:
				return false
			}
			return true
		})
	}
	return loud
}
