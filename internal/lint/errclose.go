package lint

import (
	"go/ast"
	"go/types"
)

// ErrClose protects the crash-safety work of PR 5: on write paths, the
// error that actually reports a failed write very often comes back from
// Close, Sync or Flush — the kernel buffers until then. A dropped
// Close error on a snapshot or CSV export silently persists a torn
// file. The analyzer tracks write handles (os.Create/OpenFile/
// CreateTemp results and bufio.Writer values) and flags Close/Sync/
// Flush calls whose error result is neither consumed nor explicitly
// discarded with `_ =`. Read-side closes (os.Open) are deliberately
// exempt: a failed close after a successful read loses nothing.
var ErrClose = &Analyzer{
	Name: "errclose",
	Doc:  "Close/Sync/Flush errors on write handles must be checked or explicitly discarded with _ =",
	Skip: func(pkgPath string) bool { return false },
	Run: func(p *Pass) {
		for _, f := range p.Files {
			checkErrClose(p, f)
		}
	},
}

// finalizers are the methods whose error results report deferred write
// failures.
var finalizers = map[string]bool{"Close": true, "Sync": true, "Flush": true}

// writeOpenFuncs are the os package constructors that yield write
// handles.
var writeOpenFuncs = map[string]bool{"Create": true, "OpenFile": true, "CreateTemp": true}

// checkErrClose runs the per-file analysis: collect write handles
// (file scope, so closures capturing a handle are covered), then flag
// unchecked finalizer calls on them.
func checkErrClose(p *Pass, file *ast.File) {
	handles := collectWriteHandles(p, file)
	ast.Inspect(file, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				flagFinalizer(p, file, call, handles)
			}
			return true
		case *ast.DeferStmt:
			flagFinalizer(p, file, s.Call, handles)
			return true
		case *ast.GoStmt:
			flagFinalizer(p, file, s.Call, handles)
			return true
		}
		return true
	})
}

// collectWriteHandles walks the file for objects holding write
// handles: variables assigned from os.Create/OpenFile/CreateTemp.
// (bufio.Writer and csv.Writer receivers are matched by type at the
// call site instead.)
func collectWriteHandles(p *Pass, file *ast.File) map[types.Object]bool {
	handles := make(map[types.Object]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		asgn, ok := n.(*ast.AssignStmt)
		if !ok || len(asgn.Rhs) != 1 {
			return true
		}
		call, ok := asgn.Rhs[0].(*ast.CallExpr)
		if !ok || !isWriteOpen(p, call) {
			return true
		}
		if id, ok := asgn.Lhs[0].(*ast.Ident); ok {
			if obj := identObject(p, id); obj != nil {
				handles[obj] = true
			}
		}
		return true
	})
	return handles
}

// isWriteOpen reports whether call is os.Create/OpenFile/CreateTemp.
func isWriteOpen(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !writeOpenFuncs[sel.Sel.Name] {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "os"
}

// flagFinalizer reports call when it is an unchecked Close/Sync/Flush
// on a write handle.
func flagFinalizer(p *Pass, file *ast.File, call *ast.CallExpr, handles map[types.Object]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !finalizers[sel.Sel.Name] {
		return
	}
	recvObj := receiverObject(p, sel.X)
	isHandle := recvObj != nil && handles[recvObj]
	if !isHandle && !isBufioWriter(p, sel.X) && !isCSVWriter(p, sel.X) {
		return
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	if !returnsError(sig) {
		// (*csv.Writer).Flush returns nothing; its failure surfaces via
		// Error(). Flag the Flush unless Error() is consulted on the
		// same receiver somewhere in the function.
		if isCSVWriter(p, sel.X) && sel.Sel.Name == "Flush" && !callsErrorOn(p, file, recvObj) {
			p.Reportf(call.Pos(), "csv.Writer.Flush buffers write errors; call %s.Error() after flushing", exprString(sel.X))
		}
		return
	}
	p.Reportf(call.Pos(), "%s.%s error is dropped on a write path; check it or discard explicitly with _ =", exprString(sel.X), sel.Sel.Name)
}

// receiverObject resolves the receiver expression to a types.Object
// when it is a plain identifier or selector chain ending in one.
func receiverObject(p *Pass, expr ast.Expr) types.Object {
	switch e := expr.(type) {
	case *ast.Ident:
		return identObject(p, e)
	case *ast.SelectorExpr:
		return p.Info.Uses[e.Sel]
	}
	return nil
}

func identObject(p *Pass, id *ast.Ident) types.Object {
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}

// isBufioWriter reports whether expr's static type is *bufio.Writer.
func isBufioWriter(p *Pass, expr ast.Expr) bool {
	return hasNamedType(p, expr, "bufio", "Writer")
}

// isCSVWriter reports whether expr's static type is *encoding/csv.Writer.
func isCSVWriter(p *Pass, expr ast.Expr) bool {
	return hasNamedType(p, expr, "encoding/csv", "Writer")
}

func hasNamedType(p *Pass, expr ast.Expr, pkgPath, name string) bool {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	} else if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// returnsError reports whether the signature's last result is error.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// callsErrorOn reports whether the file contains a call recv.Error().
func callsErrorOn(p *Pass, file *ast.File, recv types.Object) bool {
	if recv == nil {
		return false
	}
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Error" {
			return true
		}
		if receiverObject(p, sel.X) == recv {
			found = true
			return false
		}
		return true
	})
	return found
}

// exprString renders a receiver expression compactly for messages.
func exprString(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	}
	return "receiver"
}
