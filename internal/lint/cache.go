package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"opmap/internal/atomicfile"
)

// The result cache makes re-runs incremental: each package's findings
// are stored under a content hash covering the engine fingerprint, the
// package's own source bytes, and the cache keys of its module-internal
// dependencies (type information flows across package boundaries, so a
// dependency edit must invalidate dependents). A warm run therefore
// skips both analysis and — when no cache-missing dependent needs the
// package's types — type-checking entirely, which is what turns the
// full-module lint gate from a rebuild into a hash pass.

// EngineVersion fingerprints the analyzer implementations. Bump it
// whenever an analyzer's behavior changes so stale cached findings
// cannot survive an engine upgrade.
const EngineVersion = "opmaplint/2.0.0"

// DefaultCacheDirName is the cache directory at the module root; it is
// listed in .gitignore, never committed.
const DefaultCacheDirName = ".lintcache"

// cacheMaxAge bounds how long unused entries live before the driver
// sweeps them, so key churn cannot grow the directory without bound.
const cacheMaxAge = 14 * 24 * time.Hour

// cacheEntry is the JSON payload of one cached package result.
type cacheEntry struct {
	Version string       `json:"version"` // EngineVersion at write time
	Package string       `json:"package"`
	Diags   []cachedDiag `json:"diags"`
}

// cachedDiag is a Diagnostic flattened for storage, with the filename
// kept module-root-relative so cache entries survive a checkout moving.
type cachedDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Symbol   string `json:"symbol,omitempty"`
	Message  string `json:"message"`
}

// enginePrint hashes everything that changes findings independently of
// package sources: the engine version, the analyzer set, the compiled-in
// allowlist and the Go toolchain.
func enginePrint(analyzers []*Analyzer, allow []Allow) string {
	h := sha256.New()
	io.WriteString(h, EngineVersion)
	io.WriteString(h, runtime.Version())
	for _, a := range analyzers {
		fmt.Fprintf(h, "|a:%s", a.Name)
	}
	for _, e := range allow {
		fmt.Fprintf(h, "|w:%s\x00%s\x00%s", e.Analyzer, e.Package, e.Symbol)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// packageKey derives a package's cache key from the engine print, its
// import path, the content hash of each of its Go files (sorted), and
// the keys of its in-module dependencies (sorted), forming a Merkle
// chain over the package DAG.
func packageKey(engine, importPath, dir string, files []string, depKeys []string) (string, error) {
	h := sha256.New()
	io.WriteString(h, engine)
	io.WriteString(h, "|p:"+importPath)
	names := append([]string(nil), files...)
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return "", fmt.Errorf("lint: hashing %s: %w", filepath.Join(dir, name), err)
		}
		sum := sha256.Sum256(data)
		fmt.Fprintf(h, "|f:%s:%s", name, hex.EncodeToString(sum[:]))
	}
	deps := append([]string(nil), depKeys...)
	sort.Strings(deps)
	for _, k := range deps {
		io.WriteString(h, "|d:"+k)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// cachePath maps a key to its entry file.
func cachePath(dir, key string) string { return filepath.Join(dir, key+".json") }

// loadCached returns the cached diagnostics for key, or ok=false on
// any miss (absent, unreadable, or written by a different engine —
// corrupt entries are misses, never errors).
func loadCached(dir, key string) ([]Diagnostic, bool) {
	data, err := os.ReadFile(cachePath(dir, key))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Version != EngineVersion {
		return nil, false
	}
	diags := make([]Diagnostic, 0, len(e.Diags))
	for _, cd := range e.Diags {
		d := Diagnostic{Analyzer: cd.Analyzer, Symbol: cd.Symbol, Message: cd.Message}
		d.Pos.Filename = cd.File
		d.Pos.Line = cd.Line
		d.Pos.Column = cd.Column
		diags = append(diags, d)
	}
	return diags, true
}

// storeCached persists one package's diagnostics (filenames already
// module-root-relative) under key. Concurrent writers are safe: the
// entry is staged and renamed, so readers only ever see whole files.
func storeCached(dir, key, importPath string, diags []Diagnostic) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("lint: cache dir: %w", err)
	}
	e := cacheEntry{Version: EngineVersion, Package: importPath, Diags: make([]cachedDiag, 0, len(diags))}
	for _, d := range diags {
		e.Diags = append(e.Diags, cachedDiag{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Symbol:   d.Symbol,
			Message:  d.Message,
		})
	}
	return atomicfile.WriteFile(cachePath(dir, key), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(e)
	})
}

// pruneCache sweeps entries untouched for cacheMaxAge. Best effort:
// pruning failures never fail a lint run.
func pruneCache(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-cacheMaxAge)
	for _, de := range entries {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		if info, err := de.Info(); err == nil && info.ModTime().Before(cutoff) {
			_ = os.Remove(filepath.Join(dir, de.Name()))
		}
	}
}
