package lint

import (
	"go/ast"
	"go/types"
)

// PanicFree flags panic(...) calls in library code. The root opmap
// package and the internal packages it composes are a library: callers
// must get errors, not process aborts, and a panic reachable from an
// exported API turns a malformed dataset into a crashed analysis
// session. The few deliberate panics — documented Must* helpers and
// hot-path accessors whose contract is "caller has already validated"
// — carry allowlist entries in allow.go with their justification.
var PanicFree = &Analyzer{
	Name: "panicfree",
	Doc:  "flags panic in library code; return errors instead, or allowlist with justification",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, ok := p.Info.Uses[id].(*types.Builtin); !ok {
					return true // a local function shadowing the builtin
				}
				p.Reportf(call.Pos(), "panic in library code; return an error instead (or add a justified entry to internal/lint/allow.go)")
				return true
			})
		}
	},
}
