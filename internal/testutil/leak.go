// Package testutil holds shared test helpers. It is imported only from
// _test files; keeping the helpers in a real package lets every test
// package reuse them without duplication.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// VerifyNoLeak snapshots the goroutine count and returns a check to
// defer: the check fails the test if the count has not settled back to
// the snapshot within two seconds (cancellation paths are allowed a
// brief drain window, genuine leaks never settle). Use as
//
//	defer testutil.VerifyNoLeak(t)()
//
// Tests using this helper must not run in parallel with tests that
// spawn goroutines, since the count is process-wide.
func VerifyNoLeak(t testing.TB) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		n := runtime.NumGoroutine()
		for n > before && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
			n = runtime.NumGoroutine()
		}
		if n > before {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Errorf("goroutine leak: %d before, %d after; stacks:\n%s", before, n, buf)
		}
	}
}
