// Package wal is the write-ahead log behind crash-safe streaming
// ingestion. Appended rows are recorded durably — length-prefixed,
// CRC32-guarded, fsynced — before they are applied to any in-memory
// structure, so a crash at any point loses no acknowledged row: startup
// replays the log on top of the latest snapshot and reconstructs the
// exact pre-crash state. The deployed Opportunity Map ingests roughly
// 200 GB of call logs per month (Section V.C of the paper); contingency
// counts are additive, so recovery is replay-then-delta-apply rather
// than a full rebuild.
//
// On-disk layout: a directory of segment files named
// wal-<first-seq, 16 hex digits>.seg. Each segment starts with an
// 8-byte magic and holds consecutive records:
//
//	[8B seq LE][4B payload len LE][4B CRC32-IEEE LE][payload]
//
// The CRC covers seq, length and payload, so a torn header is detected
// the same as a torn payload. Only the newest segment can end in a torn
// record (older segments are sealed before rotation); Open truncates
// the tail back to the last complete record. New segments are staged
// through internal/atomicfile, so a crash mid-rotation leaves either no
// new segment or a valid empty one — plus at worst an orphaned staging
// file, which Open sweeps via atomicfile.CleanupTemps.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"opmap/internal/atomicfile"
	"opmap/internal/faultinject"
	"opmap/internal/obsv"
)

// Metric names recorded by the WAL. Declared here (once, as constants)
// so the daemon can pre-register them at startup and ci.sh can grep
// them by exact string.
const (
	// FsyncHistogramName times each append's fsync — the durability cost
	// every acknowledged ingest pays.
	FsyncHistogramName = "opmap_wal_fsync_seconds"
	// ReplayedRecordsCounterName counts records delivered to replay
	// callbacks during recovery.
	ReplayedRecordsCounterName = "opmap_wal_replayed_records_total"
)

// PreRegister creates the WAL metric series in reg at zero so servers
// expose them before the first append or replay touches them.
func PreRegister(reg *obsv.Registry) {
	reg.Histogram(FsyncHistogramName, nil)
	reg.Counter(ReplayedRecordsCounterName)
}

const (
	// segMagic opens every segment file. The trailing byte doubles as a
	// format version.
	segMagic = "OMAPWAL\x01"
	// recHeaderLen is the fixed record prelude: seq, payload length, CRC.
	recHeaderLen = 8 + 4 + 4
	// MaxRecordBytes bounds one record's payload so a corrupt length
	// field cannot drive an allocation; one record is one ingest batch,
	// which is orders of magnitude smaller.
	MaxRecordBytes = 1 << 28
	// DefaultSegmentBytes is the rotation threshold when Options leaves
	// SegmentBytes zero.
	DefaultSegmentBytes = 64 << 20

	segPrefix = "wal-"
	segSuffix = ".seg"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Options configures a Log.
type Options struct {
	// SegmentBytes rotates the active segment once it reaches this many
	// bytes (0 = DefaultSegmentBytes). Checkpoints can only reclaim
	// whole sealed segments, so smaller segments reclaim sooner.
	SegmentBytes int64
	// NoSync skips the per-record fsync. Only for tests and benchmarks
	// that measure the non-durable ceiling; production appends must
	// reach stable storage before they are acknowledged.
	NoSync bool
	// Metrics receives fsync timings and replay counts (nil = the obsv
	// default registry).
	Metrics *obsv.Registry
}

// Log is an append-only, crash-recoverable record log over one
// directory. All methods are safe for concurrent use; appends are
// serialized internally.
type Log struct {
	dir string
	opt Options

	fsync    *obsv.Histogram
	replayed *obsv.Counter

	mu      sync.Mutex
	f       *os.File // active segment (nil until first append or if none recovered)
	size    int64    // bytes in the active segment
	nextSeq uint64   // sequence the next Append will be assigned
	closed  bool
}

// Open recovers the log in dir, creating the directory if needed. It
// sweeps staging files orphaned by a crash mid-rotation, validates
// every segment's magic, scans the newest segment and truncates a torn
// tail back to the last complete record. The next append continues the
// recovered sequence.
func Open(dir string, opt Options) (*Log, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = DefaultSegmentBytes
	}
	if opt.Metrics == nil {
		opt.Metrics = obsv.Default()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	if _, err := atomicfile.CleanupTemps(dir); err != nil {
		return nil, fmt.Errorf("wal: sweeping staging files in %s: %w", dir, err)
	}
	l := &Log{
		dir:      dir,
		opt:      opt,
		fsync:    opt.Metrics.Histogram(FsyncHistogramName, nil),
		replayed: opt.Metrics.Counter(ReplayedRecordsCounterName),
		nextSeq:  1,
	}
	segs, err := l.segments()
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return l, nil
	}
	last := segs[len(segs)-1]
	validEnd, lastSeq, n, err := scanSegment(last.path, 0, nil)
	if err != nil {
		return nil, err
	}
	if n > 0 {
		l.nextSeq = lastSeq + 1
	} else {
		// An empty newest segment was created by rotation; its name is
		// the sequence it was opened for.
		l.nextSeq = last.firstSeq
	}
	f, err := os.OpenFile(last.path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("wal: opening segment %s: %w", last.path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		_ = f.Close() // error path: the stat error wins
		return nil, fmt.Errorf("wal: stat %s: %w", last.path, err)
	}
	if fi.Size() > validEnd {
		// Torn tail from a crash mid-append: drop the incomplete record
		// so future appends land on a clean boundary.
		if err := f.Truncate(validEnd); err != nil {
			_ = f.Close() // error path: the truncate error wins
			return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", last.path, err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close() // error path: the sync error wins
			return nil, fmt.Errorf("wal: syncing truncated %s: %w", last.path, err)
		}
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		_ = f.Close() // error path: the seek error wins
		return nil, fmt.Errorf("wal: seeking in %s: %w", last.path, err)
	}
	l.f = f
	l.size = validEnd
	return l, nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// NextSeq returns the sequence number the next Append will be assigned.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// LastSeq returns the sequence of the last durable record (0 if none).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// Align raises the next append sequence to at least next. The daemon
// calls this after loading a snapshot whose ingest sequence is ahead of
// the (possibly truncated) log, so sequences never repeat.
func (l *Log) Align(next uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if next > l.nextSeq {
		l.nextSeq = next
	}
}

// Append durably records one payload and returns its sequence number.
// The record is fsynced before Append returns: a nil error means the
// payload survives any subsequent crash. On error nothing is
// acknowledged and the log stays appendable — a partially written
// record is truncated away immediately, mirroring what Open would do
// after a real crash.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("wal: payload %d bytes exceeds record limit %d", len(payload), MaxRecordBytes)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if err := faultinject.Hit(faultinject.SiteWALAppend); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if l.f == nil || l.size >= l.opt.SegmentBytes {
		if err := l.rotate(); err != nil {
			return 0, err
		}
	}
	seq := l.nextSeq
	rec := make([]byte, recHeaderLen+len(payload))
	binary.LittleEndian.PutUint64(rec[0:8], seq)
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(payload)))
	copy(rec[recHeaderLen:], payload)
	crc := crc32.NewIEEE()
	crc.Write(rec[0:12])
	crc.Write(payload)
	binary.LittleEndian.PutUint32(rec[12:16], crc.Sum32())

	if _, err := l.f.Write(rec); err != nil {
		l.unwrite()
		return 0, fmt.Errorf("wal: writing record %d: %w", seq, err)
	}
	if err := faultinject.Hit(faultinject.SiteWALFsync); err != nil {
		l.unwrite()
		return 0, fmt.Errorf("wal: record %d: %w", seq, err)
	}
	if !l.opt.NoSync {
		start := time.Now()
		if err := l.f.Sync(); err != nil {
			l.unwrite()
			return 0, fmt.Errorf("wal: syncing record %d: %w", seq, err)
		}
		l.fsync.ObserveSince(start)
	}
	l.size += int64(len(rec))
	l.nextSeq = seq + 1
	return seq, nil
}

// unwrite drops anything written past the last durable record, so a
// failed append cannot leave a torn record in front of later good ones.
// Best-effort: if the truncate itself fails the tail stays torn, which
// recovery already tolerates.
func (l *Log) unwrite() {
	if l.f == nil {
		return
	}
	if err := l.f.Truncate(l.size); err != nil {
		return
	}
	_, _ = l.f.Seek(l.size, io.SeekStart)
}

// rotate seals the active segment and opens a fresh one for nextSeq.
// The new segment file (magic only) is staged through atomicfile, so a
// crash here leaves no partially written segment header.
func (l *Log) rotate() error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sealing segment: %w", err)
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: sealing segment: %w", err)
		}
		l.f = nil
	}
	path := l.segPath(l.nextSeq)
	err := atomicfile.WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, segMagic)
		return err
	})
	if err != nil {
		return fmt.Errorf("wal: creating segment %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("wal: opening segment %s: %w", path, err)
	}
	if _, err := f.Seek(int64(len(segMagic)), io.SeekStart); err != nil {
		_ = f.Close() // error path: the seek error wins
		return fmt.Errorf("wal: seeking in %s: %w", path, err)
	}
	l.f = f
	l.size = int64(len(segMagic))
	return nil
}

// Replay streams every durable record with sequence >= from, in order,
// to fn. It stops without error at the first torn or corrupt record —
// by construction that can only be the tail of the newest segment — and
// returns how many records were delivered. A non-nil error from fn
// aborts the replay and is returned as-is.
func (l *Log) Replay(from uint64, fn func(seq uint64, payload []byte) error) (int, error) {
	segs, err := l.segments()
	if err != nil {
		return 0, err
	}
	total := 0
	for _, seg := range segs {
		_, _, n, err := scanSegment(seg.path, from, func(seq uint64, payload []byte) error {
			if err := faultinject.Hit(faultinject.SiteWALReplay); err != nil {
				return fmt.Errorf("wal: replay: %w", err)
			}
			if err := fn(seq, payload); err != nil {
				return err
			}
			l.replayed.Inc()
			return nil
		})
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// TruncateThrough removes sealed segments whose every record has
// sequence <= seq — the segments a checkpoint at ingest sequence seq
// has made redundant. The active (newest) segment is never removed. It
// returns how many segment files were deleted.
func (l *Log) TruncateThrough(seq uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, err := l.segments()
	if err != nil {
		return 0, err
	}
	removed := 0
	// Segment i's records all precede segment i+1's first sequence, so
	// it is redundant exactly when the next segment starts at or before
	// seq+1.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].firstSeq > seq+1 {
			break
		}
		if err := os.Remove(segs[i].path); err != nil {
			return removed, fmt.Errorf("wal: removing checkpointed segment %s: %w", segs[i].path, err)
		}
		removed++
	}
	return removed, nil
}

// Close seals the active segment. Further operations return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	if err != nil {
		return fmt.Errorf("wal: closing log in %s: %w", l.dir, err)
	}
	return nil
}

// segment is one on-disk segment file.
type segment struct {
	path     string
	firstSeq uint64
}

func (l *Log) segPath(firstSeq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%016x%s", segPrefix, firstSeq, segSuffix))
}

// segments lists the log's segment files in sequence order, validating
// each name and magic. Foreign files in the directory are ignored.
func (l *Log) segments() ([]segment, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading %s: %w", l.dir, err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		var first uint64
		if _, err := fmt.Sscanf(hex, "%016x", &first); err != nil || len(hex) != 16 {
			return nil, fmt.Errorf("wal: segment %s has a malformed sequence in its name", name)
		}
		segs = append(segs, segment{path: filepath.Join(l.dir, name), firstSeq: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// scanSegment reads records from one segment file, calling fn (when
// non-nil) for each record with sequence >= from. It returns the byte
// offset just past the last complete record, the last record's
// sequence, and how many records fn received. Scanning stops quietly at
// the first invalid record — short header, bad length, CRC mismatch, or
// non-increasing sequence — which recovery treats as the torn tail. An
// unreadable file or a bad magic is an error: that is corruption no
// crash of ours produces.
func scanSegment(path string, from uint64, fn func(seq uint64, payload []byte) error) (validEnd int64, lastSeq uint64, n int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wal: opening segment %s: %w", path, err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != segMagic {
		return 0, 0, 0, fmt.Errorf("wal: segment %s: bad magic", path)
	}
	validEnd = int64(len(segMagic))
	var header [recHeaderLen]byte
	var prevSeq uint64
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			return validEnd, prevSeq, n, nil // clean EOF or torn header
		}
		seq := binary.LittleEndian.Uint64(header[0:8])
		plen := binary.LittleEndian.Uint32(header[8:12])
		want := binary.LittleEndian.Uint32(header[12:16])
		if plen > MaxRecordBytes {
			return validEnd, prevSeq, n, nil
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return validEnd, prevSeq, n, nil // torn payload
		}
		crc := crc32.NewIEEE()
		crc.Write(header[0:12])
		crc.Write(payload)
		if crc.Sum32() != want {
			return validEnd, prevSeq, n, nil
		}
		// Sequences start at 1 and strictly increase; prevSeq starts at
		// 0, so this also rejects a (CRC-valid) zero-sequence record.
		if seq <= prevSeq {
			return validEnd, prevSeq, n, nil
		}
		if fn != nil && seq >= from {
			if err := fn(seq, payload); err != nil {
				return validEnd, prevSeq, n, err
			}
			n++
		} else if fn == nil {
			n++
		}
		prevSeq = seq
		lastSeq = seq
		validEnd += int64(recHeaderLen) + int64(plen)
	}
}
