package wal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"opmap/internal/obsv"
)

// FuzzReplayWAL throws arbitrary bytes at the recovery path as the
// newest segment's body: Open followed by Replay must never panic, must
// deliver records in strictly increasing sequence order, and must stop
// at the last valid record — everything it delivers must be byte-valid
// (a correct CRC over its header and payload), because that is the
// acknowledged-durability contract recovery enforces.
func FuzzReplayWAL(f *testing.F) {
	// Seeds: empty body, one good record, a good record plus torn
	// fragments of a second, a corrupted payload, random junk.
	good := buildRecord(1, []byte("seed-row"))
	second := buildRecord(2, []byte("second"))
	f.Add([]byte{})
	f.Add(good)
	f.Add(append(append([]byte(nil), good...), second[:5]...))
	f.Add(append(append([]byte(nil), good...), second[:recHeaderLen+2]...))
	corrupt := append(append([]byte(nil), good...), second...)
	corrupt[len(corrupt)-1] ^= 0x40
	f.Add(corrupt)
	f.Add([]byte("complete junk that is longer than a record header....."))
	huge := make([]byte, recHeaderLen)
	binary.LittleEndian.PutUint64(huge[0:8], 1)
	binary.LittleEndian.PutUint32(huge[8:12], 0xffffffff) // absurd length
	f.Add(huge)

	f.Fuzz(func(t *testing.T, body []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, segPrefix+"0000000000000001"+segSuffix)
		data := append([]byte(segMagic), body...)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("write segment: %v", err)
		}
		l, err := Open(dir, Options{Metrics: obsv.NewRegistry()})
		if err != nil {
			// Open rejects nothing the fuzzer can produce here (magic is
			// fixed), so any error is unexpected.
			t.Fatalf("Open: %v", err)
		}
		defer l.Close()
		var prev uint64
		n, err := l.Replay(0, func(seq uint64, payload []byte) error {
			if prev != 0 && seq <= prev {
				t.Fatalf("replay delivered non-increasing seq %d after %d", seq, prev)
			}
			prev = seq
			// Every delivered record must be re-encodable to bytes that
			// really exist, i.e. its length was in bounds.
			if len(payload) > MaxRecordBytes {
				t.Fatalf("replay delivered oversized payload: %d bytes", len(payload))
			}
			return nil
		})
		if err != nil {
			t.Fatalf("Replay errored on fuzz input: %v", err)
		}
		// Recovery must be idempotent: a second Open over the (now
		// truncated) segment sees exactly the same records.
		l.Close()
		l2, err := Open(dir, Options{Metrics: obsv.NewRegistry()})
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		defer l2.Close()
		n2, err := l2.Replay(0, func(uint64, []byte) error { return nil })
		if err != nil || n2 != n {
			t.Fatalf("second replay: n=%d err=%v, first n=%d", n2, err, n)
		}
		// And appends after recovery land after the surviving records.
		seq, err := l2.Append([]byte("post-recovery"))
		if err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		if seq <= prev {
			t.Fatalf("post-recovery seq %d not after last replayed %d", seq, prev)
		}
	})
}

// FuzzDecodeRows asserts the payload codec never panics and never
// over-allocates on arbitrary bytes.
func FuzzDecodeRows(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeRows([][]string{{"young", "12", "yes"}, {"old", "?", "no"}}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, payload []byte) {
		rows, err := DecodeRows(payload)
		if err != nil {
			return
		}
		// A successful decode must be stable: re-encoding and decoding
		// again yields the same rows. (Byte identity with the original
		// payload is not guaranteed — uvarints admit non-canonical
		// encodings that re-encode shorter.)
		rows2, err := DecodeRows(EncodeRows(rows))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(rows2) != len(rows) {
			t.Fatalf("re-decode row count %d != %d", len(rows2), len(rows))
		}
		for i := range rows {
			if len(rows2[i]) != len(rows[i]) {
				t.Fatalf("row %d field count changed", i)
			}
			for j := range rows[i] {
				if rows2[i][j] != rows[i][j] {
					t.Fatalf("row %d field %d changed", i, j)
				}
			}
		}
	})
}
