package wal

import (
	"encoding/binary"
	"fmt"
)

// Bounds on a decoded batch. One WAL record is one ingest request; a
// corrupt payload that passed the CRC (or a hostile log file) must not
// drive an unbounded allocation.
const (
	maxBatchRows = 1 << 20
	maxRowFields = 1 << 16
	maxFieldLen  = 1 << 20
)

// EncodeRows serializes one batch of textual rows as a WAL payload:
// uvarint row count, then per row a uvarint field count followed by
// uvarint-length-prefixed field bytes. Textual form matches what the
// ingest API receives and what dataset.Builder.AddRow consumes, so a
// replayed record feeds the exact same code path as a live append.
func EncodeRows(rows [][]string) []byte {
	size := binary.MaxVarintLen64
	for _, row := range rows {
		size += binary.MaxVarintLen64
		for _, f := range row {
			size += binary.MaxVarintLen64 + len(f)
		}
	}
	buf := make([]byte, 0, size)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	put(uint64(len(rows)))
	for _, row := range rows {
		put(uint64(len(row)))
		for _, f := range row {
			put(uint64(len(f)))
			buf = append(buf, f...)
		}
	}
	return buf
}

// DecodeRows parses a payload produced by EncodeRows, with every count
// and length bounds-checked against the payload that remains.
func DecodeRows(payload []byte) ([][]string, error) {
	off := 0
	next := func(what string, limit uint64) (uint64, error) {
		v, n := binary.Uvarint(payload[off:])
		if n <= 0 {
			return 0, fmt.Errorf("wal: rows payload: truncated %s at offset %d", what, off)
		}
		off += n
		if v > limit {
			return 0, fmt.Errorf("wal: rows payload: %s %d exceeds limit %d", what, v, limit)
		}
		return v, nil
	}
	nRows, err := next("row count", maxBatchRows)
	if err != nil {
		return nil, err
	}
	rows := make([][]string, 0, min(nRows, uint64(len(payload))))
	for i := uint64(0); i < nRows; i++ {
		nFields, err := next("field count", maxRowFields)
		if err != nil {
			return nil, err
		}
		row := make([]string, 0, min(nFields, uint64(len(payload))))
		for j := uint64(0); j < nFields; j++ {
			flen, err := next("field length", maxFieldLen)
			if err != nil {
				return nil, err
			}
			if uint64(len(payload)-off) < flen {
				return nil, fmt.Errorf("wal: rows payload: field of %d bytes overruns payload at offset %d", flen, off)
			}
			row = append(row, string(payload[off:off+int(flen)]))
			off += int(flen)
		}
		rows = append(rows, row)
	}
	if off != len(payload) {
		return nil, fmt.Errorf("wal: rows payload: %d trailing bytes", len(payload)-off)
	}
	return rows, nil
}
