package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"opmap/internal/faultinject"
	"opmap/internal/obsv"
)

// collect replays the whole log into a map and returns the payloads in
// order alongside the delivered count.
func collect(t *testing.T, l *Log, from uint64) (seqs []uint64, payloads [][]byte, n int) {
	t.Helper()
	n, err := l.Replay(from, func(seq uint64, payload []byte) error {
		seqs = append(seqs, seq)
		payloads = append(payloads, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return seqs, payloads, n
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Metrics: obsv.NewRegistry()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var want [][]byte
	for i := 0; i < 25; i++ {
		p := []byte(fmt.Sprintf("record-%d", i))
		seq, err := l.Append(p)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Append %d: seq = %d, want %d", i, seq, i+1)
		}
		want = append(want, p)
	}
	if got := l.LastSeq(); got != 25 {
		t.Fatalf("LastSeq = %d, want 25", got)
	}
	seqs, payloads, n := collect(t, l, 0)
	if n != 25 || !reflect.DeepEqual(payloads, want) {
		t.Fatalf("replay returned %d records, payloads equal: %v", n, reflect.DeepEqual(payloads, want))
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("replayed seq[%d] = %d, want %d", i, s, i+1)
		}
	}
	// From the middle: only the suffix.
	seqs, _, n = collect(t, l, 20)
	if n != 6 || seqs[0] != 20 {
		t.Fatalf("Replay(from=20) delivered %d records starting at %v", n, seqs)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Metrics: obsv.NewRegistry()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 7; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, err := Open(dir, Options{Metrics: obsv.NewRegistry()})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if got := l2.NextSeq(); got != 8 {
		t.Fatalf("NextSeq after reopen = %d, want 8", got)
	}
	seq, err := l2.Append([]byte("after"))
	if err != nil || seq != 8 {
		t.Fatalf("Append after reopen: seq=%d err=%v", seq, err)
	}
	_, _, n := collect(t, l2, 0)
	if n != 8 {
		t.Fatalf("replay after reopen delivered %d records, want 8", n)
	}
}

func TestRotationAndTruncateThrough(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a rotation every couple of records.
	l, err := Open(dir, Options{SegmentBytes: 64, Metrics: obsv.NewRegistry()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	for i := 0; i < 20; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("payload-%02d", i))); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	segs, err := l.segments()
	if err != nil {
		t.Fatalf("segments: %v", err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected >=3 segments after 20 appends at 64-byte rotation, got %d", len(segs))
	}
	// Everything must still replay across the segment boundaries.
	if _, _, n := collect(t, l, 0); n != 20 {
		t.Fatalf("replay across segments delivered %d records, want 20", n)
	}
	// A checkpoint at seq 10 frees every segment wholly at or before it.
	removed, err := l.TruncateThrough(10)
	if err != nil {
		t.Fatalf("TruncateThrough: %v", err)
	}
	if removed == 0 {
		t.Fatalf("TruncateThrough(10) removed no segments")
	}
	seqs, _, _ := collect(t, l, 11)
	if len(seqs) != 10 || seqs[0] != 11 || seqs[len(seqs)-1] != 20 {
		t.Fatalf("post-truncation replay from 11: seqs %v", seqs)
	}
	// The active segment is never removed, however far the checkpoint is.
	if _, err := l.TruncateThrough(1000); err != nil {
		t.Fatalf("TruncateThrough(1000): %v", err)
	}
	if segs, _ = l.segments(); len(segs) == 0 {
		t.Fatalf("active segment was removed")
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	for _, cut := range []int{1, 5, recHeaderLen - 1, recHeaderLen + 2} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Metrics: obsv.NewRegistry()})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			for i := 0; i < 5; i++ {
				if _, err := l.Append([]byte("good-record")); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			segs, _ := (&Log{dir: dir}).segments()
			path := segs[len(segs)-1].path
			// Simulate a crash mid-append: append `cut` bytes of a
			// half-written record.
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatalf("open segment: %v", err)
			}
			if _, err := f.Write(make([]byte, cut)); err != nil {
				t.Fatalf("write garbage: %v", err)
			}
			f.Close()
			l2, err := Open(dir, Options{Metrics: obsv.NewRegistry()})
			if err != nil {
				t.Fatalf("reopen over torn tail: %v", err)
			}
			defer l2.Close()
			if _, _, n := collect(t, l2, 0); n != 5 {
				t.Fatalf("replay after torn tail delivered %d records, want 5", n)
			}
			// The tail is gone from disk and appends continue cleanly.
			seq, err := l2.Append([]byte("after-recovery"))
			if err != nil || seq != 6 {
				t.Fatalf("append after recovery: seq=%d err=%v", seq, err)
			}
			if _, _, n := collect(t, l2, 0); n != 6 {
				t.Fatalf("replay after recovery append delivered %d records, want 6", n)
			}
		})
	}
}

func TestCorruptPayloadStopsReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Metrics: obsv.NewRegistry()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Close()
	segs, _ := (&Log{dir: dir}).segments()
	path := segs[0].path
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	// Flip a byte in the last record's payload: CRC must catch it and
	// replay must stop after the first two records.
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("rewrite segment: %v", err)
	}
	l2, err := Open(dir, Options{Metrics: obsv.NewRegistry()})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if _, _, n := collect(t, l2, 0); n != 2 {
		t.Fatalf("replay over corrupt record delivered %d records, want 2", n)
	}
}

func TestAppendFaultLeavesLogClean(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Metrics: obsv.NewRegistry()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("before")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// A fault in the fsync window: the record was written but not
	// synced. The append must fail and must not leave the record in the
	// log.
	disarm, err := faultinject.Arm(faultinject.Fault{Site: faultinject.SiteWALFsync, Kind: faultinject.Error, Times: 1})
	if err != nil {
		t.Fatalf("Arm: %v", err)
	}
	defer disarm()
	if _, err := l.Append([]byte("lost")); err == nil {
		t.Fatalf("Append under fsync fault succeeded")
	}
	seq, err := l.Append([]byte("after"))
	if err != nil {
		t.Fatalf("Append after fault: %v", err)
	}
	if seq != 2 {
		t.Fatalf("seq after failed append = %d, want 2 (failed append must not consume a sequence)", seq)
	}
	_, payloads, n := collect(t, l, 0)
	if n != 2 || string(payloads[0]) != "before" || string(payloads[1]) != "after" {
		t.Fatalf("replay after fault: n=%d payloads=%q", n, payloads)
	}
}

func TestOpenSweepsOrphanedTemps(t *testing.T) {
	dir := t.TempDir()
	// Plant staging-file orphans as a crash between CreateTemp and
	// rename during segment rotation would leave them.
	for i := 0; i < 3; i++ {
		orphan := filepath.Join(dir, fmt.Sprintf(".atomictmp-%d", i))
		if err := os.WriteFile(orphan, []byte("junk"), 0o644); err != nil {
			t.Fatalf("plant orphan: %v", err)
		}
	}
	l, err := Open(dir, Options{Metrics: obsv.NewRegistry()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range entries {
		if len(e.Name()) > 0 && e.Name()[0] == '.' {
			t.Fatalf("orphaned staging file %s survived Open", e.Name())
		}
	}
}

func TestAlignRaisesSequence(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Metrics: obsv.NewRegistry()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	l.Align(100)
	if got := l.NextSeq(); got != 100 {
		t.Fatalf("NextSeq after Align(100) = %d", got)
	}
	l.Align(50) // never lowers
	if got := l.NextSeq(); got != 100 {
		t.Fatalf("NextSeq after Align(50) = %d, want 100", got)
	}
	seq, err := l.Append([]byte("x"))
	if err != nil || seq != 100 {
		t.Fatalf("Append after Align: seq=%d err=%v", seq, err)
	}
}

func TestReplayedRecordsCounter(t *testing.T) {
	dir := t.TempDir()
	reg := obsv.NewRegistry()
	l, err := Open(dir, Options{Metrics: reg})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	for i := 0; i < 4; i++ {
		if _, err := l.Append([]byte("r")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	collect(t, l, 0)
	if got := reg.Counter(ReplayedRecordsCounterName).Value(); got != 4 {
		t.Fatalf("%s = %d, want 4", ReplayedRecordsCounterName, got)
	}
	if reg.Histogram(FsyncHistogramName, nil).Count() == 0 {
		t.Fatalf("%s recorded no observations", FsyncHistogramName)
	}
}

func TestRowsCodecRoundTrip(t *testing.T) {
	cases := [][][]string{
		nil,
		{},
		{{}},
		{{"a"}},
		{{"young", "1", "yes"}, {"old", "?", "no"}},
		{{"", "with,comma", "with\nnewline", "ünïcode"}},
	}
	for i, rows := range cases {
		payload := EncodeRows(rows)
		got, err := DecodeRows(payload)
		if err != nil {
			t.Fatalf("case %d: DecodeRows: %v", i, err)
		}
		want := rows
		if want == nil {
			want = [][]string{}
		}
		if len(got) != len(want) {
			t.Fatalf("case %d: %d rows decoded, want %d", i, len(got), len(want))
		}
		for j := range want {
			if len(got[j]) != len(want[j]) {
				t.Fatalf("case %d row %d: %d fields, want %d", i, j, len(got[j]), len(want[j]))
			}
			for k := range want[j] {
				if got[j][k] != want[j][k] {
					t.Fatalf("case %d row %d field %d: %q != %q", i, j, k, got[j][k], want[j][k])
				}
			}
		}
	}
}

func TestRowsCodecRejectsCorruptPayloads(t *testing.T) {
	good := EncodeRows([][]string{{"a", "b"}, {"c", "d"}})
	bad := [][]byte{
		good[:len(good)-1],     // truncated field bytes
		good[:1],               // truncated row header
		append([]byte{}, 0xff), // truncated uvarint
		nil,                    // replaced below with an oversized row count
		append(append([]byte(nil), good...), 0x00), // trailing bytes
	}
	// A row count far beyond the limit.
	bad[3] = binary.AppendUvarint(nil, maxBatchRows+1)
	for i, payload := range bad {
		if _, err := DecodeRows(payload); err == nil {
			t.Fatalf("case %d: DecodeRows accepted corrupt payload", i)
		}
	}
}

// TestScanRejectsBadMagic ensures a foreign or zeroed file posing as a
// segment is an error, not silently empty.
func TestScanRejectsBadMagic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, segPrefix+"0000000000000001"+segSuffix)
	if err := os.WriteFile(path, []byte("NOTAWAL!"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := Open(dir, Options{Metrics: obsv.NewRegistry()}); err == nil {
		t.Fatalf("Open accepted a segment with bad magic")
	}
}

// buildRecord assembles a raw record for corruption tests.
func buildRecord(seq uint64, payload []byte) []byte {
	rec := make([]byte, recHeaderLen+len(payload))
	binary.LittleEndian.PutUint64(rec[0:8], seq)
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(payload)))
	copy(rec[recHeaderLen:], payload)
	crc := crc32.NewIEEE()
	crc.Write(rec[0:12])
	crc.Write(payload)
	binary.LittleEndian.PutUint32(rec[12:16], crc.Sum32())
	return rec
}

// TestNonMonotonicSequenceStopsScan guards the invariant that replay
// stops at the first non-increasing sequence instead of delivering a
// record out of order.
func TestNonMonotonicSequenceStopsScan(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, segPrefix+"0000000000000001"+segSuffix)
	var data []byte
	data = append(data, segMagic...)
	data = append(data, buildRecord(1, []byte("one"))...)
	data = append(data, buildRecord(2, []byte("two"))...)
	data = append(data, buildRecord(2, []byte("dup"))...) // valid CRC, bad seq
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	l, err := Open(dir, Options{Metrics: obsv.NewRegistry()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if _, _, n := collect(t, l, 0); n != 2 {
		t.Fatalf("replay delivered %d records, want 2", n)
	}
}
