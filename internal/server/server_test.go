package server

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"opmap"
	"opmap/internal/faultinject"
	"opmap/internal/testutil"
)

// testServer builds a server over a small demo session. The session is
// built once; servers over it are cheap.
var (
	sessOnce  sync.Once
	testSess  *opmap.Session
	testTruth opmap.CallLogTruth
	sessErr   error
)

func demoSession(t *testing.T) (*opmap.Session, opmap.CallLogTruth) {
	t.Helper()
	sessOnce.Do(func() {
		testSess, testTruth, sessErr = opmap.CaseStudy(1, 2000)
		if sessErr == nil {
			sessErr = testSess.BuildCubes()
		}
	})
	if sessErr != nil {
		t.Fatal(sessErr)
	}
	return testSess, testTruth
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Session == nil {
		cfg.Session, _ = demoSession(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	s.SetReady(true)
	return s, ts
}

func get(t *testing.T, base, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func sweepQuery(gt opmap.CallLogTruth) string {
	v := url.Values{}
	v.Set("attr", gt.PhoneAttr)
	v.Set("class", gt.DropClass)
	return "/api/sweep?" + v.Encode()
}

func TestHealthAndReady(t *testing.T) {
	sess, _ := demoSession(t)
	s, err := New(Config{Session: sess})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := get(t, ts.URL, "/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", code)
	}
	// New marks the server ready: the session is preloaded before
	// construction, so there is nothing left to wait for.
	if code, _ := get(t, ts.URL, "/readyz"); code != http.StatusOK {
		t.Errorf("/readyz on a fresh server = %d, want 200", code)
	}
	s.SetReady(false)
	if code, _ := get(t, ts.URL, "/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz after SetReady(false) = %d, want 503", code)
	}
	s.SetReady(true)
	if code, _ := get(t, ts.URL, "/readyz"); code != http.StatusOK {
		t.Errorf("/readyz after SetReady(true) = %d, want 200", code)
	}
}

func TestOverviewAndDetail(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, gt := demoSession(t)

	code, body := get(t, ts.URL, "/api/overview")
	if code != http.StatusOK {
		t.Fatalf("/api/overview = %d: %s", code, body)
	}
	var ov struct {
		Rows      int `json:"rows"`
		CubeCount int `json:"cube_count"`
	}
	if err := json.Unmarshal(body, &ov); err != nil {
		t.Fatalf("overview is not JSON: %v", err)
	}
	if ov.Rows != 2000 || ov.CubeCount == 0 {
		t.Errorf("overview rows=%d cubes=%d, want 2000 rows and cubes > 0", ov.Rows, ov.CubeCount)
	}

	v := url.Values{}
	v.Set("attr", gt.PhoneAttr)
	v.Set("class", gt.DropClass)
	if code, body := get(t, ts.URL, "/api/detail?"+v.Encode()); code != http.StatusOK {
		t.Errorf("/api/detail = %d: %s", code, body)
	}
	// A missing parameter is a client error, not a 500.
	if code, _ := get(t, ts.URL, "/api/detail"); code != http.StatusBadRequest {
		t.Errorf("/api/detail without params = %d, want 400", code)
	}
}

// TestPanicFaultRecovered is the headline robustness check: a panic
// injected into the handler path yields a 500 and the server keeps
// serving.
func TestPanicFaultRecovered(t *testing.T) {
	defer faultinject.Reset()
	_, ts := newTestServer(t, Config{})

	disarm, err := faultinject.Arm(faultinject.Fault{
		Site:  faultinject.SiteServerHandle,
		Kind:  faultinject.Panic,
		Times: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	code, body := get(t, ts.URL, "/api/overview")
	if code != http.StatusInternalServerError {
		t.Fatalf("request during panic fault = %d (%s), want 500", code, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Errorf("500 body %q is not an error JSON", body)
	}
	// The process survived: the very next request succeeds.
	if code, body := get(t, ts.URL, "/api/overview"); code != http.StatusOK {
		t.Errorf("request after recovered panic = %d (%s), want 200", code, body)
	}
}

func TestErrorFaultMapsTo500(t *testing.T) {
	defer faultinject.Reset()
	_, ts := newTestServer(t, Config{})
	disarm, err := faultinject.Arm(faultinject.Fault{
		Site:  faultinject.SiteServerHandle,
		Kind:  faultinject.Error,
		Times: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	if code, _ := get(t, ts.URL, "/api/overview"); code != http.StatusInternalServerError {
		t.Errorf("injected error = %d, want 500", code)
	}
	if code, _ := get(t, ts.URL, "/api/overview"); code != http.StatusOK {
		t.Errorf("request after injected error = %d, want 200", code)
	}
}

// TestConcurrencyShed pins load shedding: with one in-flight slot
// occupied by a stalled request, the next request gets 429 instead of
// queueing.
func TestConcurrencyShed(t *testing.T) {
	defer faultinject.Reset()
	_, ts := newTestServer(t, Config{MaxInFlight: 1})
	disarm, err := faultinject.Arm(faultinject.Fault{
		Site:  faultinject.SiteServerHandle,
		Kind:  faultinject.Delay,
		Delay: 400 * time.Millisecond,
		Times: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	first := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/api/overview")
		if err != nil {
			first <- -1
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	time.Sleep(100 * time.Millisecond) // let the first request occupy the slot
	if code, _ := get(t, ts.URL, "/api/overview"); code != http.StatusTooManyRequests {
		t.Errorf("second concurrent request = %d, want 429", code)
	}
	select {
	case code := <-first:
		if code != http.StatusOK {
			t.Errorf("stalled first request = %d, want 200", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("first request never completed")
	}
}

// TestSweepPartialUnderTimeout: a sweep that cannot finish inside the
// request timeout returns 200 with partial results and per-pair error
// annotations, not a 5xx.
func TestSweepPartialUnderTimeout(t *testing.T) {
	defer faultinject.Reset()
	_, gt := demoSession(t)
	_, ts := newTestServer(t, Config{RequestTimeout: 150 * time.Millisecond})
	disarm, err := faultinject.Arm(faultinject.Fault{
		Site:  faultinject.SiteSweepPair,
		Kind:  faultinject.Delay,
		Delay: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	code, body := get(t, ts.URL, sweepQuery(gt))
	if code != http.StatusOK {
		t.Fatalf("degraded sweep = %d (%s), want 200", code, body)
	}
	var res struct {
		Partial bool `json:"partial"`
		Errors  []struct {
			Item string `json:"item"`
			Err  string `json:"err"`
		} `json:"errors"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("sweep body is not JSON: %v", err)
	}
	if !res.Partial {
		t.Error("sweep under deadline did not mark the result partial")
	}
	if len(res.Errors) == 0 {
		t.Error("no skipped pairs annotated")
	}
}

// TestServeDrains pins graceful shutdown: canceling the serve context
// stops accepting, drains, and Serve returns nil.
func TestServeDrains(t *testing.T) {
	defer testutil.VerifyNoLeak(t)()
	sess, _ := demoSession(t)
	s, err := New(Config{Session: sess, DrainTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	s.SetReady(true)

	base := "http://" + ln.Addr().String()
	if code, _ := get(t, base, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz on live server = %d, want 200", code)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Serve returned %v after drain, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not drain within 5s")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after drain")
	}
}
