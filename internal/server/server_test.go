package server

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"opmap"
	"opmap/internal/faultinject"
	"opmap/internal/obsv"
	"opmap/internal/testutil"
)

// testServer builds a server over a small demo session. The session is
// built once; servers over it are cheap.
var (
	sessOnce  sync.Once
	testSess  *opmap.Session
	testTruth opmap.CallLogTruth
	sessErr   error
)

func demoSession(t *testing.T) (*opmap.Session, opmap.CallLogTruth) {
	t.Helper()
	sessOnce.Do(func() {
		testSess, testTruth, sessErr = opmap.CaseStudy(1, 2000)
		if sessErr == nil {
			sessErr = testSess.BuildCubes()
		}
	})
	if sessErr != nil {
		t.Fatal(sessErr)
	}
	return testSess, testTruth
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Session == nil && len(cfg.Sessions) == 0 {
		cfg.Session, _ = demoSession(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	s.SetReady(true)
	return s, ts
}

func get(t *testing.T, base, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func sweepQuery(gt opmap.CallLogTruth) string {
	v := url.Values{}
	v.Set("attr", gt.PhoneAttr)
	v.Set("class", gt.DropClass)
	return "/api/sweep?" + v.Encode()
}

func TestHealthAndReady(t *testing.T) {
	sess, _ := demoSession(t)
	s, err := New(Config{Session: sess})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := get(t, ts.URL, "/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", code)
	}
	// New marks the server ready: the session is preloaded before
	// construction, so there is nothing left to wait for.
	if code, _ := get(t, ts.URL, "/readyz"); code != http.StatusOK {
		t.Errorf("/readyz on a fresh server = %d, want 200", code)
	}
	s.SetReady(false)
	if code, _ := get(t, ts.URL, "/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz after SetReady(false) = %d, want 503", code)
	}
	s.SetReady(true)
	if code, _ := get(t, ts.URL, "/readyz"); code != http.StatusOK {
		t.Errorf("/readyz after SetReady(true) = %d, want 200", code)
	}
}

func TestOverviewAndDetail(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, gt := demoSession(t)

	code, body := get(t, ts.URL, "/api/overview")
	if code != http.StatusOK {
		t.Fatalf("/api/overview = %d: %s", code, body)
	}
	var ov struct {
		Rows      int `json:"rows"`
		CubeCount int `json:"cube_count"`
	}
	if err := json.Unmarshal(body, &ov); err != nil {
		t.Fatalf("overview is not JSON: %v", err)
	}
	if ov.Rows != 2000 || ov.CubeCount == 0 {
		t.Errorf("overview rows=%d cubes=%d, want 2000 rows and cubes > 0", ov.Rows, ov.CubeCount)
	}

	v := url.Values{}
	v.Set("attr", gt.PhoneAttr)
	v.Set("class", gt.DropClass)
	if code, body := get(t, ts.URL, "/api/detail?"+v.Encode()); code != http.StatusOK {
		t.Errorf("/api/detail = %d: %s", code, body)
	}
	// A missing parameter is a client error, not a 500.
	if code, _ := get(t, ts.URL, "/api/detail"); code != http.StatusBadRequest {
		t.Errorf("/api/detail without params = %d, want 400", code)
	}
}

// TestPanicFaultRecovered is the headline robustness check: a panic
// injected into the handler path yields a 500 and the server keeps
// serving.
func TestPanicFaultRecovered(t *testing.T) {
	defer faultinject.Reset()
	_, ts := newTestServer(t, Config{})

	disarm, err := faultinject.Arm(faultinject.Fault{
		Site:  faultinject.SiteServerHandle,
		Kind:  faultinject.Panic,
		Times: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	code, body := get(t, ts.URL, "/api/overview")
	if code != http.StatusInternalServerError {
		t.Fatalf("request during panic fault = %d (%s), want 500", code, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Errorf("500 body %q is not an error JSON", body)
	}
	// The process survived: the very next request succeeds.
	if code, body := get(t, ts.URL, "/api/overview"); code != http.StatusOK {
		t.Errorf("request after recovered panic = %d (%s), want 200", code, body)
	}
}

func TestErrorFaultMapsTo500(t *testing.T) {
	defer faultinject.Reset()
	_, ts := newTestServer(t, Config{})
	disarm, err := faultinject.Arm(faultinject.Fault{
		Site:  faultinject.SiteServerHandle,
		Kind:  faultinject.Error,
		Times: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	if code, _ := get(t, ts.URL, "/api/overview"); code != http.StatusInternalServerError {
		t.Errorf("injected error = %d, want 500", code)
	}
	if code, _ := get(t, ts.URL, "/api/overview"); code != http.StatusOK {
		t.Errorf("request after injected error = %d, want 200", code)
	}
}

// TestConcurrencyShed pins load shedding: with one in-flight slot
// occupied by a stalled request, the next request gets 429 instead of
// queueing.
func TestConcurrencyShed(t *testing.T) {
	defer faultinject.Reset()
	_, ts := newTestServer(t, Config{MaxInFlight: 1})
	disarm, err := faultinject.Arm(faultinject.Fault{
		Site:  faultinject.SiteServerHandle,
		Kind:  faultinject.Delay,
		Delay: 400 * time.Millisecond,
		Times: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	first := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/api/overview")
		if err != nil {
			first <- -1
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	time.Sleep(100 * time.Millisecond) // let the first request occupy the slot
	if code, _ := get(t, ts.URL, "/api/overview"); code != http.StatusTooManyRequests {
		t.Errorf("second concurrent request = %d, want 429", code)
	}
	select {
	case code := <-first:
		if code != http.StatusOK {
			t.Errorf("stalled first request = %d, want 200", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("first request never completed")
	}
}

// TestSweepPartialUnderTimeout: a sweep that cannot finish inside the
// request timeout returns 200 with partial results and per-pair error
// annotations, not a 5xx.
func TestSweepPartialUnderTimeout(t *testing.T) {
	defer faultinject.Reset()
	_, gt := demoSession(t)
	_, ts := newTestServer(t, Config{RequestTimeout: 150 * time.Millisecond})
	disarm, err := faultinject.Arm(faultinject.Fault{
		Site:  faultinject.SiteSweepPair,
		Kind:  faultinject.Delay,
		Delay: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	code, body := get(t, ts.URL, sweepQuery(gt))
	if code != http.StatusOK {
		t.Fatalf("degraded sweep = %d (%s), want 200", code, body)
	}
	var res struct {
		Partial bool `json:"partial"`
		Errors  []struct {
			Item  string `json:"item"`
			Error string `json:"error"`
		} `json:"errors"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("sweep body is not JSON: %v", err)
	}
	if !res.Partial {
		t.Error("sweep under deadline did not mark the result partial")
	}
	if len(res.Errors) == 0 {
		t.Fatal("no skipped pairs annotated")
	}
	// The wire contract is item + error; an annotation whose error text
	// was lost in encoding would leave analysts guessing why a pair is
	// missing from a partial sweep.
	for _, ie := range res.Errors {
		if ie.Item == "" || ie.Error == "" {
			t.Fatalf("per-item annotation incomplete on the wire: %+v", ie)
		}
	}
}

// TestIntParamRejected pins satellite fix #1: malformed or negative
// integer query parameters are a 400 with a descriptive message, not a
// silent fallback to the default.
func TestIntParamRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, gt := demoSession(t)
	for _, tc := range []struct {
		name, path string
	}{
		{"malformed top", "/api/overview?top=abc"},
		{"negative top", "/api/overview?top=-3"},
		{"malformed max_pairs", sweepQuery(gt) + "&max_pairs=lots"},
		{"negative max_pairs", sweepQuery(gt) + "&max_pairs=-1"},
	} {
		code, body := get(t, ts.URL, tc.path)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status = %d (%s), want 400", tc.name, code, body)
			continue
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: body %q is not a descriptive error JSON", tc.name, body)
		}
	}
	// An absent parameter still uses the default.
	if code, body := get(t, ts.URL, "/api/overview"); code != http.StatusOK {
		t.Errorf("/api/overview without top = %d (%s), want 200", code, body)
	}
}

// TestMetricsEndpoint drives one compare and one sweep through the
// server and asserts the /metrics scrape reflects them: request
// counters per path/status, the outcome counters, and the pipeline
// stage histograms (present because the server shares the process
// registry with the analysis stages).
func TestMetricsEndpoint(t *testing.T) {
	reg := obsv.NewRegistry()
	_, ts := newTestServer(t, Config{Metrics: reg})
	_, gt := demoSession(t)

	v := url.Values{}
	v.Set("attr", gt.PhoneAttr)
	v.Set("v1", gt.GoodPhone)
	v.Set("v2", gt.BadPhone)
	v.Set("class", gt.DropClass)
	if code, body := get(t, ts.URL, "/api/compare?"+v.Encode()); code != http.StatusOK {
		t.Fatalf("/api/compare = %d: %s", code, body)
	}
	if code, body := get(t, ts.URL, sweepQuery(gt)); code != http.StatusOK {
		t.Fatalf("/api/sweep = %d: %s", code, body)
	}

	code, body := get(t, ts.URL, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	out := string(body)
	for _, want := range []string{
		`opmapd_requests_total{path="/api/compare",status="200"} 1`,
		`opmapd_requests_total{path="/api/sweep",status="200"} 1`,
		"opmapd_sheds_total 0",
		"opmapd_timeouts_total 0",
		"opmapd_panics_total 0",
		"opmapd_partials_total 0",
		`opmapd_request_duration_seconds_count{path="/api/compare"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q\n%s", want, out)
		}
	}

	// JSON exposition is the same registry in a different coat.
	code, body = get(t, ts.URL, "/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("/metrics?format=json = %d", code)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("JSON exposition invalid: %v", err)
	}
	if doc.Counters[`opmapd_requests_total{path="/api/sweep",status="200"}`] != 1 {
		t.Errorf("JSON exposition sweep counter = %v, want 1", doc.Counters)
	}
}

// TestRequestIDHeader: the middleware assigns a request id when absent
// and echoes a caller-provided one, so client and server logs can be
// joined on it.
func TestRequestIDHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/api/overview")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("no X-Request-Id assigned on response")
	}

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/api/overview", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "caller-supplied-7")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "caller-supplied-7" {
		t.Errorf("X-Request-Id = %q, want the caller-supplied id echoed", got)
	}
}

// TestRequestLogLine: one served request produces one structured log
// record carrying method, path, status, duration and the request id.
func TestRequestLogLine(t *testing.T) {
	var sb syncBuffer
	logger := obsv.NewLogger(&sb, obsv.LevelInfo)
	_, ts := newTestServer(t, Config{Logger: logger})
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/api/overview", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "log-test-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	out := sb.String()
	for _, want := range []string{
		"msg=request", "request_id=log-test-1", "method=GET",
		"path=/api/overview", "status=200", "dur=", "outcome=ok",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("request log missing %q: %q", want, out)
		}
	}
}

// syncBuffer is a strings.Builder safe for concurrent writers.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestMultiDataset pins the registry contract: named sessions are
// selected with the dataset query parameter, the default dataset keeps
// single-dataset URLs working, /api/datasets enumerates what is served,
// and an unknown name is a client error.
func TestMultiDataset(t *testing.T) {
	east, _ := demoSession(t)
	west, _, err := opmap.CaseStudy(2, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if err := west.BuildCubesOptions(context.Background(), opmap.BuildOptions{Lazy: true}); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{
		Sessions:       map[string]*opmap.Session{"east": east, "west": west},
		DefaultDataset: "east",
	})

	code, body := get(t, ts.URL, "/api/datasets")
	if code != http.StatusOK {
		t.Fatalf("/api/datasets = %d: %s", code, body)
	}
	var dl struct {
		Default  string `json:"default"`
		Datasets []struct {
			Name string `json:"name"`
			Rows int    `json:"rows"`
			Lazy bool   `json:"lazy"`
		} `json:"datasets"`
	}
	if err := json.Unmarshal(body, &dl); err != nil {
		t.Fatalf("/api/datasets is not JSON: %v", err)
	}
	if dl.Default != "east" || len(dl.Datasets) != 2 {
		t.Fatalf("datasets listing = %+v, want default east and 2 entries", dl)
	}
	byName := map[string]struct {
		Rows int
		Lazy bool
	}{}
	for _, d := range dl.Datasets {
		byName[d.Name] = struct {
			Rows int
			Lazy bool
		}{d.Rows, d.Lazy}
	}
	if byName["east"].Rows != 2000 || byName["east"].Lazy {
		t.Errorf("east entry = %+v, want 2000 eager rows", byName["east"])
	}
	if byName["west"].Rows != 1200 || !byName["west"].Lazy {
		t.Errorf("west entry = %+v, want 1200 lazy rows", byName["west"])
	}

	var ov struct {
		Rows int `json:"rows"`
	}
	// No parameter routes to the default dataset, preserving existing URLs.
	if code, body := get(t, ts.URL, "/api/overview"); code != http.StatusOK {
		t.Fatalf("/api/overview = %d: %s", code, body)
	} else if err := json.Unmarshal(body, &ov); err != nil || ov.Rows != 2000 {
		t.Errorf("default overview rows = %d (err %v), want 2000", ov.Rows, err)
	}
	if code, body := get(t, ts.URL, "/api/overview?dataset=west"); code != http.StatusOK {
		t.Fatalf("/api/overview?dataset=west = %d: %s", code, body)
	} else if err := json.Unmarshal(body, &ov); err != nil || ov.Rows != 1200 {
		t.Errorf("west overview rows = %d (err %v), want 1200", ov.Rows, err)
	}

	code, body = get(t, ts.URL, "/api/overview?dataset=nope")
	if code != http.StatusBadRequest {
		t.Fatalf("unknown dataset = %d (%s), want 400", code, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "nope") {
		t.Errorf("unknown-dataset error %q should name the dataset", body)
	}
}

// TestServeDrains pins graceful shutdown: canceling the serve context
// stops accepting, drains, and Serve returns nil.
func TestServeDrains(t *testing.T) {
	defer testutil.VerifyNoLeak(t)()
	sess, _ := demoSession(t)
	s, err := New(Config{Session: sess, DrainTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	s.SetReady(true)

	base := "http://" + ln.Addr().String()
	if code, _ := get(t, base, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz on live server = %d, want 200", code)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Serve returned %v after drain, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not drain within 5s")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after drain")
	}
}

// TestDatasetsSnapshotStatus pins the snapshot field on /api/datasets:
// present per dataset when the daemon wires a SnapshotStatus callback,
// absent otherwise.
func TestDatasetsSnapshotStatus(t *testing.T) {
	sess, _ := demoSession(t)
	_, ts := newTestServer(t, Config{
		Session: sess,
		SnapshotStatus: func(name string) string {
			if name == DefaultDatasetName {
				return "loaded"
			}
			return ""
		},
	})
	code, body := get(t, ts.URL, "/api/datasets")
	if code != http.StatusOK {
		t.Fatalf("/api/datasets = %d: %s", code, body)
	}
	var dl struct {
		Datasets []struct {
			Name     string `json:"name"`
			Snapshot string `json:"snapshot"`
		} `json:"datasets"`
	}
	if err := json.Unmarshal(body, &dl); err != nil {
		t.Fatalf("/api/datasets is not JSON: %v", err)
	}
	if len(dl.Datasets) != 1 || dl.Datasets[0].Snapshot != "loaded" {
		t.Fatalf("datasets = %+v, want one entry with snapshot \"loaded\"", dl.Datasets)
	}

	// Without the callback the field stays off the wire entirely.
	_, ts2 := newTestServer(t, Config{Session: sess})
	if _, body := get(t, ts2.URL, "/api/datasets"); strings.Contains(string(body), "\"snapshot\"") {
		t.Errorf("snapshot field present without a SnapshotStatus callback: %s", body)
	}
}

// wireScore is the slice element of a compare response's ranked list,
// as decoded for cross-form equality checks.
type wireScore struct {
	Name      string  `json:"name"`
	Score     float64 `json:"score"`
	NormScore float64 `json:"norm_score"`
}

// TestCompareAllValues exercises the batch form of /api/compare:
// all_values=1 returns one entry per value whose one-vs-rest split is
// defined, and each entry's ranking is identical to what the
// single-value form returns for that value.
func TestCompareAllValues(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, gt := demoSession(t)

	v := url.Values{}
	v.Set("attr", gt.PhoneAttr)
	v.Set("class", gt.DropClass)
	v.Set("all_values", "1")
	code, body := get(t, ts.URL, "/api/compare?"+v.Encode())
	if code != http.StatusOK {
		t.Fatalf("/api/compare all_values = %d: %s", code, body)
	}
	var all struct {
		Attr        string `json:"attr"`
		Class       string `json:"class"`
		Partial     bool   `json:"partial"`
		Comparisons []struct {
			Value  string      `json:"value"`
			Ranked []wireScore `json:"ranked"`
		} `json:"comparisons"`
	}
	if err := json.Unmarshal(body, &all); err != nil {
		t.Fatalf("all_values response is not JSON: %v", err)
	}
	if all.Attr != gt.PhoneAttr || all.Class != gt.DropClass {
		t.Errorf("response identifies %s/%s, want %s/%s", all.Attr, all.Class, gt.PhoneAttr, gt.DropClass)
	}
	if len(all.Comparisons) == 0 {
		t.Fatal("all_values compared nothing")
	}
	for _, c := range all.Comparisons {
		if c.Value == "" {
			t.Fatal("comparison entry missing its value tag")
		}
		sv := url.Values{}
		sv.Set("attr", gt.PhoneAttr)
		sv.Set("class", gt.DropClass)
		sv.Set("value", c.Value)
		code, single := get(t, ts.URL, "/api/compare?"+sv.Encode())
		if code != http.StatusOK {
			t.Fatalf("single-value compare for %q = %d: %s", c.Value, code, single)
		}
		var one struct {
			Ranked []wireScore `json:"ranked"`
		}
		if err := json.Unmarshal(single, &one); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(c.Ranked, one.Ranked) {
			t.Errorf("value %q: all_values ranking differs from the single-value form", c.Value)
		}
	}
}

// TestCompareAttrsParam covers the attrs= restriction and its error
// mapping: a valid restriction narrows the ranking, while naming the
// comparison attribute or the class answers 400 with the two distinct
// compare-layer messages.
func TestCompareAttrsParam(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sess, gt := demoSession(t)

	query := func(attrs string) (int, []byte) {
		v := url.Values{}
		v.Set("attr", gt.PhoneAttr)
		v.Set("class", gt.DropClass)
		v.Set("value", gt.BadPhone)
		v.Set("attrs", attrs)
		return get(t, ts.URL, "/api/compare?"+v.Encode())
	}

	code, body := query(gt.DistinguishingAttr)
	if code != http.StatusOK {
		t.Fatalf("restricted compare = %d: %s", code, body)
	}
	var one struct {
		Ranked []wireScore `json:"ranked"`
	}
	if err := json.Unmarshal(body, &one); err != nil {
		t.Fatal(err)
	}
	if len(one.Ranked) != 1 || one.Ranked[0].Name != gt.DistinguishingAttr {
		t.Errorf("attrs=%s ranked %+v, want exactly that attribute", gt.DistinguishingAttr, one.Ranked)
	}

	// Self-rank and class-rank are distinct client errors, both 400.
	for _, tc := range []struct {
		attrs, wantMsg string
	}{
		{gt.PhoneAttr, "comparison attribute itself"},
		{sess.ClassAttribute(), "class attribute cannot be ranked"},
	} {
		code, body := query(tc.attrs)
		if code != http.StatusBadRequest {
			t.Errorf("attrs=%s = %d: %s, want 400", tc.attrs, code, body)
		}
		if !strings.Contains(string(body), tc.wantMsg) {
			t.Errorf("attrs=%s error %q does not mention %q", tc.attrs, body, tc.wantMsg)
		}
	}

	// Malformed lists and booleans are 400s, not silent defaults.
	if code, _ := query("a,,b"); code != http.StatusBadRequest {
		t.Errorf("attrs with empty entry = %d, want 400", code)
	}
	v := url.Values{}
	v.Set("attr", gt.PhoneAttr)
	v.Set("class", gt.DropClass)
	v.Set("all_values", "ture")
	if code, _ := get(t, ts.URL, "/api/compare?"+v.Encode()); code != http.StatusBadRequest {
		t.Errorf("all_values=ture = %d, want 400", code)
	}
}

// drilldownBody builds a minimal valid drill-down request body for the
// demo session's planted pair.
func drilldownBody(gt opmap.CallLogTruth) string {
	b, _ := json.Marshal(map[string]any{
		"attr":  gt.PhoneAttr,
		"v1":    gt.GoodPhone,
		"v2":    gt.BadPhone,
		"class": gt.DropClass,
	})
	return string(b)
}

// TestDrilldownEndpoint drives POST /api/drilldown: a valid request
// answers 200 with oriented labels and scored findings, and the
// repeated identical request is served from the session result cache.
func TestDrilldownEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sess, gt := demoSession(t)

	hits0 := sess.EngineStats().ResultCacheHits
	resp := postJSON(t, ts.URL, "/api/drilldown", drilldownBody(gt))
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/drilldown = %d: %s", resp.StatusCode, body)
	}
	var dd struct {
		Attr     string `json:"attr"`
		Label1   string `json:"label1"`
		Label2   string `json:"label2"`
		Class    string `json:"class"`
		Measure  string `json:"measure"`
		Expanded int    `json:"expanded"`
		Partial  bool   `json:"partial"`
		Findings []struct {
			Conds []struct {
				Attr  string `json:"attr"`
				Value string `json:"value"`
			} `json:"conds"`
			Depth int     `json:"depth"`
			Score float64 `json:"score"`
			N2    int64   `json:"n2"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(body, &dd); err != nil {
		t.Fatalf("drilldown response is not JSON: %v", err)
	}
	if dd.Attr != gt.PhoneAttr || dd.Class != gt.DropClass {
		t.Errorf("response identifies %s/%s, want %s/%s", dd.Attr, dd.Class, gt.PhoneAttr, gt.DropClass)
	}
	if dd.Label1 != gt.GoodPhone || dd.Label2 != gt.BadPhone {
		t.Errorf("orientation %q vs %q, want %q vs %q", dd.Label1, dd.Label2, gt.GoodPhone, gt.BadPhone)
	}
	if dd.Measure != "paper" {
		t.Errorf("default measure = %q, want paper", dd.Measure)
	}
	if dd.Partial {
		t.Error("drill-down over the demo session came back partial")
	}
	if len(dd.Findings) == 0 {
		t.Fatal("no findings")
	}
	for i, f := range dd.Findings {
		if len(f.Conds) != f.Depth {
			t.Errorf("finding %d: %d conds at depth %d", i, len(f.Conds), f.Depth)
		}
		if i > 0 && f.Score > dd.Findings[i-1].Score {
			t.Errorf("findings not sorted by score at %d", i)
		}
	}

	// The identical request again must be a result-cache hit.
	resp = postJSON(t, ts.URL, "/api/drilldown", drilldownBody(gt))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat /api/drilldown = %d", resp.StatusCode)
	}
	if hits := sess.EngineStats().ResultCacheHits; hits <= hits0 {
		t.Errorf("repeat drilldown did not hit the result cache (hits %d -> %d)", hits0, hits)
	}
}

// TestDrilldownValidation is the endpoint's table test: method and
// body mistakes answer 405/400 with messages naming the offender.
func TestDrilldownValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sess, gt := demoSession(t)

	if code, body := get(t, ts.URL, "/api/drilldown"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /api/drilldown = %d: %s, want 405", code, body)
	}

	mutate := func(set map[string]any) string {
		m := map[string]any{
			"attr": gt.PhoneAttr, "v1": gt.GoodPhone, "v2": gt.BadPhone, "class": gt.DropClass,
		}
		for k, v := range set {
			m[k] = v
		}
		b, _ := json.Marshal(m)
		return string(b)
	}
	for _, tc := range []struct {
		name, body, wantMsg string
	}{
		{"malformed JSON", "{", "drilldown body"},
		{"missing class", mutate(map[string]any{"class": ""}), "requires attr, v1, v2 and class"},
		{"unknown attribute", mutate(map[string]any{"attr": "No-Such-Attr"}), "No-Such-Attr"},
		{"identical values", mutate(map[string]any{"v2": gt.GoodPhone}), ""},
		{"negative knob", mutate(map[string]any{"beam": -1}), "beam=-1"},
		{"unknown measure", mutate(map[string]any{"measure": "entropy"}), "entropy"},
		{"self-ranking attrs", mutate(map[string]any{"attrs": []string{gt.PhoneAttr}}), "comparison attribute itself"},
		{"class in attrs", mutate(map[string]any{"attrs": []string{sess.ClassAttribute()}}), "class attribute cannot be ranked"},
		{"empty attrs entry", mutate(map[string]any{"attrs": []string{gt.DistinguishingAttr, " "}}), "empty attribute name"},
		{"duplicate attrs entry", mutate(map[string]any{"attrs": []string{gt.DistinguishingAttr, gt.DistinguishingAttr}}), "twice"},
	} {
		resp := postJSON(t, ts.URL, "/api/drilldown", tc.body)
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s = %d: %s, want 400", tc.name, resp.StatusCode, body)
			continue
		}
		if tc.wantMsg != "" && !strings.Contains(string(body), tc.wantMsg) {
			t.Errorf("%s error %q does not mention %q", tc.name, body, tc.wantMsg)
		}
	}
}

// TestCompareAttrsDuplicate pins the duplicate-attrs fix on the
// compare endpoint: attrs=A,A used to rank A twice; it now answers
// 400 naming the duplicate.
func TestCompareAttrsDuplicate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, gt := demoSession(t)

	v := url.Values{}
	v.Set("attr", gt.PhoneAttr)
	v.Set("class", gt.DropClass)
	v.Set("value", gt.BadPhone)
	v.Set("attrs", gt.DistinguishingAttr+","+gt.DistinguishingAttr)
	code, body := get(t, ts.URL, "/api/compare?"+v.Encode())
	if code != http.StatusBadRequest {
		t.Fatalf("duplicate attrs = %d: %s, want 400", code, body)
	}
	if !strings.Contains(string(body), gt.DistinguishingAttr) || !strings.Contains(string(body), "twice") {
		t.Errorf("duplicate-attrs error %q does not name the duplicate", body)
	}
}
