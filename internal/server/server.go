// Package server implements the opmapd HTTP daemon: JSON endpoints for
// overview, attribute detail, pairwise comparison, multi-condition
// drill-down and sweeps over one or more preloaded Sessions. The serving layer is hardened the way
// the paper's deployed system had to be (analysts querying
// pre-materialized cubes online, Section V.C): every request runs
// under a timeout, panics are converted to 500s without taking the
// process down, in-flight work is bounded with 429 load-shedding, and
// SIGTERM drains cleanly. Every request is also observable after the
// fact: the middleware counts requests, sheds, timeouts, panics and
// partial-result degradations into an obsv.Registry exposed at
// /metrics, and emits one structured log line per request carrying a
// propagated request id.
//
// A daemon can serve several datasets at once: each named Session has
// its own engine (eager store or lazy cube cache), and requests pick
// one with the dataset query parameter. Requests without the
// parameter go to the default dataset, so single-dataset URLs keep
// working unchanged.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"opmap"
	"opmap/internal/engine"
	"opmap/internal/faultinject"
	"opmap/internal/obsv"
	"opmap/internal/rulecube"
	"opmap/internal/wal"
)

// Metric families recorded by the request middleware.
const (
	metricRequests = "opmapd_requests_total"           // counter{path,status}
	metricDuration = "opmapd_request_duration_seconds" // histogram{path}
	metricSheds    = "opmapd_sheds_total"              // counter
	metricTimeouts = "opmapd_timeouts_total"           // counter
	metricPanics   = "opmapd_panics_total"             // counter
	metricPartials = "opmapd_partials_total"           // counter
	metricInflight = "opmapd_inflight"                 // gauge
	// metricIngestRows counts rows durably accepted through /api/ingest;
	// metricIngestSheds counts ingest batches rejected with 503 because
	// the apply queue was full (WAL backpressure).
	metricIngestRows  = "opmap_ingest_rows_total"  // counter
	metricIngestSheds = "opmap_ingest_sheds_total" // counter
)

// shedRetryAfterSeconds is the Retry-After hint attached to load-shed
// responses: both the middleware's 429 (too many requests in flight)
// and ingest's 503 (apply queue full). One second matches the drain
// rate of both queues under normal load.
const shedRetryAfterSeconds = 1

// ErrBackpressure is returned by a Config.Ingest callback when the
// dataset's bounded apply queue is full. The ingest endpoint maps it
// to 503 with a Retry-After header instead of a client error: the
// batch was NOT accepted and should be retried unchanged.
var ErrBackpressure = errors.New("server: ingest apply queue full")

// DefaultDatasetName is the registry name given to Config.Session, the
// single-dataset configuration form.
const DefaultDatasetName = "default"

// Config parameterizes a Server. At least one session (Session or an
// entry in Sessions) is required; zero values for the rest use the
// documented defaults.
type Config struct {
	// Session is the single-dataset form: the session is registered
	// under DefaultDatasetName and serves requests without a dataset
	// parameter.
	Session *opmap.Session
	// Sessions is the multi-dataset registry, name → preloaded
	// session. It may be combined with Session (which keeps the name
	// DefaultDatasetName).
	Sessions map[string]*opmap.Session
	// DefaultDataset names the session serving requests without a
	// dataset parameter. Empty means DefaultDatasetName when Session
	// is set, else the sole entry of Sessions; with several named
	// sessions and no Session it must be set explicitly.
	DefaultDataset string
	// RequestTimeout bounds each request's context. Zero means 10s.
	RequestTimeout time.Duration
	// MaxInFlight bounds concurrently served requests; excess requests
	// are shed with 429. Zero means 16.
	MaxInFlight int
	// DrainTimeout bounds the graceful shutdown after the serve context
	// is canceled. Zero means 10s.
	DrainTimeout time.Duration
	// Logger receives one structured record per request plus handler
	// errors and panics. Nil discards.
	Logger *obsv.Logger
	// Metrics receives the request counters and latency histograms and
	// backs the /metrics endpoint. Nil means obsv.Default(), which also
	// carries the pipeline stage timings — so one scrape shows the
	// serving layer and the analysis stages together.
	Metrics *obsv.Registry
	// SnapshotStatus, when set, reports each dataset's snapshot state
	// ("loaded", "seeded", "cold (reason)", ...) for /api/datasets.
	// Empty return values omit the field; nil disables it entirely —
	// the daemon wires this only when serving with a snapshot
	// directory.
	SnapshotStatus func(dataset string) string
	// Ingest, when set, enables POST /api/ingest: the callback must
	// durably append the batch to the named dataset (WAL first, then
	// the in-memory session) and return the assigned WAL sequence.
	// Return ErrBackpressure when the apply queue is full — the
	// endpoint answers 503 with a Retry-After header. Nil disables the
	// endpoint (405-free: it answers 503 "ingestion disabled").
	Ingest func(ctx context.Context, dataset string, rows [][]string) (uint64, error)
	// IngestStatus, when set, reports whether a dataset's WAL replay is
	// still in progress. While any dataset replays, /readyz answers 503
	// and names the replaying datasets, so load balancers hold traffic
	// until recovery finishes.
	IngestStatus func(dataset string) (replaying bool)
}

// Server is the hardened HTTP front end over a registry of Sessions.
type Server struct {
	sessions       map[string]*opmap.Session
	defaultName    string
	requestTimeout time.Duration
	drainTimeout   time.Duration
	sem            chan struct{}
	logger         *obsv.Logger
	metrics        *obsv.Registry
	snapStatus     func(dataset string) string
	ingest         func(ctx context.Context, dataset string, rows [][]string) (uint64, error)
	ingestStatus   func(dataset string) bool
	mux            *http.ServeMux

	ready    atomic.Bool
	draining atomic.Bool
}

// New builds a Server over the given config.
func New(cfg Config) (*Server, error) {
	sessions, defaultName, err := buildRegistry(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 16
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = obsv.Nop()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obsv.Default()
	}
	s := &Server{
		sessions:       sessions,
		defaultName:    defaultName,
		requestTimeout: cfg.RequestTimeout,
		drainTimeout:   cfg.DrainTimeout,
		sem:            make(chan struct{}, cfg.MaxInFlight),
		logger:         cfg.Logger,
		metrics:        cfg.Metrics,
		snapStatus:     cfg.SnapshotStatus,
		ingest:         cfg.Ingest,
		ingestStatus:   cfg.IngestStatus,
		mux:            http.NewServeMux(),
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	for path, h := range map[string]handlerFunc{
		"/api/overview":  s.handleOverview,
		"/api/detail":    s.handleDetail,
		"/api/compare":   s.handleCompare,
		"/api/drilldown": s.handleDrilldown,
		"/api/sweep":     s.handleSweep,
		"/api/datasets":  s.handleDatasets,
		"/api/ingest":    s.handleIngest,
	} {
		s.mux.Handle(path, s.wrap(path, h))
		// Pre-register every status series wrap can emit so a scrape
		// right after startup already lists the full matrix at 0 and
		// dashboards never see a series appear mid-incident.
		for _, status := range []int{
			http.StatusOK,
			http.StatusBadRequest,
			http.StatusMethodNotAllowed,
			http.StatusTooManyRequests,
			http.StatusInternalServerError,
			http.StatusServiceUnavailable,
			http.StatusGatewayTimeout,
		} {
			s.metrics.Counter(metricRequests, "path", path, "status", strconv.Itoa(status))
		}
		s.metrics.Histogram(metricDuration, nil, "path", path)
	}
	// Outcome counters exist from the first scrape, not the first
	// incident.
	s.metrics.Counter(metricSheds)
	s.metrics.Counter(metricTimeouts)
	s.metrics.Counter(metricPanics)
	s.metrics.Counter(metricPartials)
	s.metrics.Gauge(metricInflight)
	// Engine cache series likewise: a fresh lazy daemon must already
	// expose its hit/miss/eviction counters at 0 so a scrape can assert
	// "startup built nothing".
	engine.PreRegister(s.metrics)
	// The cube-build and dataset-scan counters too: a snapshot warm
	// start must be able to prove "zero cubes built" with a scrape, and
	// a batch comparison must be able to prove "one shared scan", which
	// needs both series present at 0 rather than absent.
	s.metrics.Counter(rulecube.CubesBuiltCounterName)
	s.metrics.Counter(rulecube.CubeScansCounterName)
	// Shard-merge series: a shard-directory warm start must be able to
	// prove "N shards merged, zero cubes built" with a scrape.
	s.metrics.Histogram(opmap.ShardMergeHistogramName, nil)
	s.metrics.Counter(opmap.ShardsMergedCounterName)
	// Ingest series exist whether or not ingestion is enabled, so the
	// kill -9 smoke can assert opmap_wal_replayed_records_total moved
	// and dashboards can alert on sheds from the first scrape.
	s.metrics.Counter(metricIngestRows)
	s.metrics.Counter(metricIngestSheds)
	wal.PreRegister(s.metrics)
	s.ready.Store(true)
	return s, nil
}

// buildRegistry merges the single- and multi-dataset config forms into
// one name → session map and resolves the default dataset name.
func buildRegistry(cfg Config) (map[string]*opmap.Session, string, error) {
	sessions := make(map[string]*opmap.Session, len(cfg.Sessions)+1)
	for name, sess := range cfg.Sessions {
		if name == "" {
			return nil, "", fmt.Errorf("server: Config.Sessions contains an empty dataset name")
		}
		if sess == nil {
			return nil, "", fmt.Errorf("server: Config.Sessions[%q] is nil", name)
		}
		sessions[name] = sess
	}
	if cfg.Session != nil {
		if _, dup := sessions[DefaultDatasetName]; dup {
			return nil, "", fmt.Errorf("server: Config.Session conflicts with Sessions[%q]", DefaultDatasetName)
		}
		sessions[DefaultDatasetName] = cfg.Session
	}
	if len(sessions) == 0 {
		return nil, "", fmt.Errorf("server: at least one session is required (Config.Session or Config.Sessions)")
	}
	def := cfg.DefaultDataset
	if def == "" {
		switch {
		case cfg.Session != nil:
			def = DefaultDatasetName
		case len(sessions) == 1:
			for name := range sessions {
				def = name
			}
		default:
			return nil, "", fmt.Errorf("server: Config.DefaultDataset is required with multiple named sessions")
		}
	}
	if _, ok := sessions[def]; !ok {
		return nil, "", fmt.Errorf("server: default dataset %q is not registered", def)
	}
	return sessions, def, nil
}

// session resolves the dataset query parameter to a registered
// Session; absence selects the default dataset, so pre-registry URLs
// are unchanged.
func (s *Server) session(r *http.Request) (*opmap.Session, error) {
	name := r.URL.Query().Get("dataset")
	if name == "" {
		name = s.defaultName
	}
	sess, ok := s.sessions[name]
	if !ok {
		return nil, badRequest("unknown dataset %q (GET /api/datasets lists the served datasets)", name)
	}
	return sess, nil
}

// DatasetNames returns the registered dataset names, sorted.
func (s *Server) DatasetNames() []string {
	names := make([]string, 0, len(s.sessions))
	for name := range s.sessions {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Handler returns the server's root handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// EnablePprof registers the net/http/pprof handlers under
// /debug/pprof/ on the server's mux. Off by default: profiling
// endpoints expose internals and cost CPU, so opmapd gates this
// behind its -pprof flag.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// SetReady flips readiness (readyz), e.g. while cubes are rebuilt.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Serve accepts connections on ln until ctx is canceled, then drains:
// readyz starts failing (load balancers stop sending traffic), open
// requests get up to DrainTimeout to finish, and Serve returns nil on
// a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler: s.mux,
		// Bound header reads so idle half-open connections cannot pin
		// the listener; request bodies are bounded per-handler by the
		// request timeout.
		ReadHeaderTimeout: 5 * time.Second,
	}
	drainErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		s.draining.Store(true)
		shCtx, cancel := context.WithTimeout(context.Background(), s.drainTimeout)
		defer cancel()
		drainErr <- srv.Shutdown(shCtx)
	}()
	err := srv.Serve(ln)
	if !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-drainErr
}

// handlerFunc is an endpoint: it returns the response value to encode
// as JSON, or an error that the middleware maps to a status code.
type handlerFunc func(r *http.Request) (any, error)

// partialer marks response DTOs that can represent a degraded
// (partial) result, so the middleware can count and log degradations
// without inspecting concrete types.
type partialer interface{ partialResult() bool }

// httpError carries an explicit status code out of a handler.
// retryAfter, when positive, becomes a Retry-After header on the
// response so well-behaved clients back off instead of hammering.
type httpError struct {
	status     int
	msg        string
	retryAfter int // seconds; 0 omits the header
}

func (e *httpError) Error() string { return e.msg }

// badRequest builds a 400 with a client-facing message.
func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// wrap applies the hardening and observability middleware to an
// endpoint: request-id propagation, concurrency bounding with 429
// shedding, the per-request timeout, the server.handle fault point,
// panic recovery, status mapping, metrics and the request log line.
// The handler returns a value rather than writing the response
// itself, so a panic mid-handler can still be converted into a clean
// 500.
func (s *Server) wrap(path string, h handlerFunc) http.Handler {
	durations := s.metrics.Histogram(metricDuration, nil, "path", path)
	inflight := s.metrics.Gauge(metricInflight)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" {
			reqID = obsv.NewRequestID()
		}
		ctx := obsv.WithRequestID(r.Context(), reqID)
		w.Header().Set("X-Request-Id", reqID)

		finish := func(status int, outcome string, err error) {
			s.metrics.Counter(metricRequests, "path", path, "status", strconv.Itoa(status)).Inc()
			durations.ObserveSince(start)
			kv := []any{
				"method", r.Method,
				"path", path,
				"status", status,
				"dur", time.Since(start).Round(time.Microsecond),
				"outcome", outcome,
			}
			if err != nil {
				kv = append(kv, "err", err)
			}
			if status >= http.StatusInternalServerError {
				s.logger.Error(ctx, "request", kv...)
				return
			}
			s.logger.Info(ctx, "request", kv...)
		}

		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.metrics.Counter(metricSheds).Inc()
			finish(http.StatusTooManyRequests, "shed", nil)
			w.Header().Set("Retry-After", strconv.Itoa(shedRetryAfterSeconds))
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "server overloaded; retry later"})
			return
		}
		inflight.Add(1)
		defer inflight.Add(-1)
		ctx, cancel := context.WithTimeout(ctx, s.requestTimeout)
		defer cancel()

		var (
			out      any
			err      error
			panicked bool
		)
		func() {
			defer func() {
				if p := recover(); p != nil {
					panicked = true
					s.logger.Error(ctx, "panic recovered", "path", path, "panic", fmt.Sprintf("%v", p), "stack", string(debug.Stack()))
				}
			}()
			if err = faultinject.HitContext(ctx, faultinject.SiteServerHandle); err != nil {
				return
			}
			out, err = h(r.WithContext(ctx))
		}()
		switch {
		case panicked:
			s.metrics.Counter(metricPanics).Inc()
			finish(http.StatusInternalServerError, "panic", nil)
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: "internal server error"})
		case err != nil:
			status := statusOf(err)
			outcome := "error"
			if errors.Is(err, context.DeadlineExceeded) {
				s.metrics.Counter(metricTimeouts).Inc()
				outcome = "timeout"
			}
			var he *httpError
			if errors.As(err, &he) && he.retryAfter > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(he.retryAfter))
			}
			finish(status, outcome, err)
			writeJSON(w, status, errorBody{Error: err.Error()})
		default:
			outcome := "ok"
			if p, ok := out.(partialer); ok && p.partialResult() {
				// A degraded-but-served request: the client got a 200
				// with partial data, which capacity planning needs to
				// see separately from clean successes.
				s.metrics.Counter(metricPartials).Inc()
				outcome = "partial"
			}
			finish(http.StatusOK, outcome, nil)
			writeJSON(w, http.StatusOK, out)
		}
	})
}

// statusOf maps a handler error to an HTTP status: explicit httpErrors
// keep their code, deadline expiry is 504, client cancellation 499-ish
// (503, the closest standard code), injected faults and other internal
// failures 500, and anything else — almost always a name-resolution
// problem in query parameters — 400.
func statusOf(err error) int {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.status
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.Is(err, faultinject.ErrInjected):
		return http.StatusInternalServerError
	case errors.Is(err, opmap.ErrRankSelf), errors.Is(err, opmap.ErrRankClass):
		// Distinct, errors.Is-matchable client errors from the compare
		// layer: an attrs= list naming the comparison attribute or the
		// class. Mapped explicitly so both stay 400 even if the default
		// mapping below ever tightens.
		return http.StatusBadRequest
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status line is already written; an encode error here can only
	// be logged by the caller's middleware, not reported to the client.
	_ = enc.Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readyzResponse is the /readyz body. Ingest appears only when the
// daemon serves with a WAL directory: it maps each dataset to "ready"
// or "replaying", and any replaying dataset holds the whole endpoint
// at 503 so load balancers wait out recovery.
type readyzResponse struct {
	Status string            `json:"status"`
	Ingest map[string]string `json:"ingest,omitempty"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	resp := readyzResponse{Status: "ready"}
	status := http.StatusOK
	switch {
	case s.draining.Load():
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	case !s.ready.Load():
		resp.Status = "not ready"
		status = http.StatusServiceUnavailable
	}
	if s.ingestStatus != nil {
		resp.Ingest = make(map[string]string, len(s.sessions))
		for name := range s.sessions {
			if s.ingestStatus(name) {
				resp.Ingest[name] = "replaying"
				if status == http.StatusOK {
					resp.Status = "replaying"
					status = http.StatusServiceUnavailable
				}
			} else {
				resp.Ingest[name] = "ready"
			}
		}
	}
	writeJSON(w, status, resp)
}

// handleMetrics exposes the registry: Prometheus text by default,
// JSON with ?format=json. It bypasses the request middleware — a
// scrape must work even when the API is shedding load, and scrapes
// should not count as traffic.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		if err := s.metrics.WriteJSON(w); err != nil {
			s.logger.Error(r.Context(), "metrics exposition", "err", err)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.WritePrometheus(w); err != nil {
		s.logger.Error(r.Context(), "metrics exposition", "err", err)
	}
}
