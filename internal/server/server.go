// Package server implements the opmapd HTTP daemon: JSON endpoints for
// overview, attribute detail, pairwise comparison and sweeps over a
// preloaded Session. The serving layer is hardened the way the paper's
// deployed system had to be (analysts querying pre-materialized cubes
// online, Section V.C): every request runs under a timeout, panics are
// converted to 500s without taking the process down, in-flight work is
// bounded with 429 load-shedding, and SIGTERM drains cleanly.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime/debug"
	"sync/atomic"
	"time"

	"opmap"
	"opmap/internal/faultinject"
)

// Config parameterizes a Server. Session is required; zero values for
// the rest use the documented defaults.
type Config struct {
	// Session is the preloaded analysis session (cubes built).
	Session *opmap.Session
	// RequestTimeout bounds each request's context. Zero means 10s.
	RequestTimeout time.Duration
	// MaxInFlight bounds concurrently served requests; excess requests
	// are shed with 429. Zero means 16.
	MaxInFlight int
	// DrainTimeout bounds the graceful shutdown after the serve context
	// is canceled. Zero means 10s.
	DrainTimeout time.Duration
	// Logger receives request-level errors and panics. Nil discards.
	Logger *log.Logger
}

// Server is the hardened HTTP front end over one Session.
type Server struct {
	sess           *opmap.Session
	requestTimeout time.Duration
	drainTimeout   time.Duration
	sem            chan struct{}
	logger         *log.Logger
	mux            *http.ServeMux

	ready    atomic.Bool
	draining atomic.Bool
}

// New builds a Server over the given config.
func New(cfg Config) (*Server, error) {
	if cfg.Session == nil {
		return nil, fmt.Errorf("server: Config.Session is required")
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 16
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(discard{}, "", 0)
	}
	s := &Server{
		sess:           cfg.Session,
		requestTimeout: cfg.RequestTimeout,
		drainTimeout:   cfg.DrainTimeout,
		sem:            make(chan struct{}, cfg.MaxInFlight),
		logger:         cfg.Logger,
		mux:            http.NewServeMux(),
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.Handle("/api/overview", s.wrap(s.handleOverview))
	s.mux.Handle("/api/detail", s.wrap(s.handleDetail))
	s.mux.Handle("/api/compare", s.wrap(s.handleCompare))
	s.mux.Handle("/api/sweep", s.wrap(s.handleSweep))
	s.ready.Store(true)
	return s, nil
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Handler returns the server's root handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// SetReady flips readiness (readyz), e.g. while cubes are rebuilt.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Serve accepts connections on ln until ctx is canceled, then drains:
// readyz starts failing (load balancers stop sending traffic), open
// requests get up to DrainTimeout to finish, and Serve returns nil on
// a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler: s.mux,
		// Bound header reads so idle half-open connections cannot pin
		// the listener; request bodies are bounded per-handler by the
		// request timeout.
		ReadHeaderTimeout: 5 * time.Second,
	}
	drainErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		s.draining.Store(true)
		shCtx, cancel := context.WithTimeout(context.Background(), s.drainTimeout)
		defer cancel()
		drainErr <- srv.Shutdown(shCtx)
	}()
	err := srv.Serve(ln)
	if !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-drainErr
}

// handlerFunc is an endpoint: it returns the response value to encode
// as JSON, or an error that the middleware maps to a status code.
type handlerFunc func(r *http.Request) (any, error)

// httpError carries an explicit status code out of a handler.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// badRequest builds a 400 with a client-facing message.
func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// wrap applies the hardening middleware to an endpoint: concurrency
// bounding with 429 shedding, the per-request timeout, the
// server.handle fault point, panic recovery, and status mapping. The
// handler returns a value rather than writing the response itself, so
// a panic mid-handler can still be converted into a clean 500.
func (s *Server) wrap(h handlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "server overloaded; retry later"})
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout)
		defer cancel()

		var (
			out      any
			err      error
			panicked bool
		)
		func() {
			defer func() {
				if p := recover(); p != nil {
					panicked = true
					s.logger.Printf("panic serving %s: %v\n%s", r.URL.Path, p, debug.Stack())
				}
			}()
			if err = faultinject.HitContext(ctx, faultinject.SiteServerHandle); err != nil {
				return
			}
			out, err = h(r.WithContext(ctx))
		}()
		switch {
		case panicked:
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: "internal server error"})
		case err != nil:
			status := statusOf(err)
			if status >= http.StatusInternalServerError {
				s.logger.Printf("error serving %s: %v", r.URL.Path, err)
			}
			writeJSON(w, status, errorBody{Error: err.Error()})
		default:
			writeJSON(w, http.StatusOK, out)
		}
	})
}

// statusOf maps a handler error to an HTTP status: explicit httpErrors
// keep their code, deadline expiry is 504, client cancellation 499-ish
// (503, the closest standard code), injected faults and other internal
// failures 500, and anything else — almost always a name-resolution
// problem in query parameters — 400.
func statusOf(err error) int {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.status
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.Is(err, faultinject.ErrInjected):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status line is already written; an encode error here can only
	// be logged by the caller's middleware, not reported to the client.
	_ = enc.Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case !s.ready.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not ready"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}
