package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"opmap"
)

// The endpoint handlers translate query parameters into Session calls
// under the request context and return JSON-ready values. Response
// shapes are DTOs local to this package so the wire format is explicit
// and stable regardless of the library types behind it.

type overviewResponse struct {
	Rows        int                `json:"rows"`
	Class       string             `json:"class"`
	Classes     []string           `json:"classes"`
	Attributes  []string           `json:"attributes"`
	CubeCount   int                `json:"cube_count"`
	RuleSpace   int64              `json:"rule_space"`
	Influential []influentialEntry `json:"influential"`
	Trends      []trendEntry       `json:"trends"`
}

type influentialEntry struct {
	Attr              string  `json:"attr"`
	ChiSquare         float64 `json:"chi_square"`
	PValue            float64 `json:"p_value"`
	MutualInformation float64 `json:"mutual_information"`
}

type trendEntry struct {
	Attr     string  `json:"attr"`
	Class    string  `json:"class"`
	Kind     string  `json:"kind"`
	Strength float64 `json:"strength"`
}

func (s *Server) handleOverview(r *http.Request) (any, error) {
	sess, err := s.session(r)
	if err != nil {
		return nil, err
	}
	limit, err := intParam(r, "top", 10)
	if err != nil {
		return nil, err
	}
	imp, err := sess.ImpressionsContext(r.Context(), opmap.ImpressionOptions{})
	if err != nil {
		return nil, err
	}
	resp := &overviewResponse{
		Rows:       sess.NumRows(),
		Class:      sess.ClassAttribute(),
		Classes:    sess.Classes(),
		Attributes: sess.Attributes(),
		CubeCount:  sess.CubeCount(),
		RuleSpace:  sess.RuleSpaceSize(),
	}
	for i, inf := range imp.Influential {
		if i >= limit {
			break
		}
		resp.Influential = append(resp.Influential, influentialEntry{
			Attr:              inf.Attr,
			ChiSquare:         inf.ChiSquare,
			PValue:            inf.PValue,
			MutualInformation: inf.MutualInformation,
		})
	}
	for _, t := range imp.Trends {
		resp.Trends = append(resp.Trends, trendEntry{
			Attr:     t.Attr,
			Class:    t.Class,
			Kind:     t.Kind,
			Strength: t.Strength,
		})
	}
	return resp, nil
}

type detailResponse struct {
	Attr   string      `json:"attr"`
	Values []string    `json:"values"`
	Pairs  []pairEntry `json:"pairs"`
}

type pairEntry struct {
	Value1 string  `json:"value1"`
	Value2 string  `json:"value2"`
	Cf1    float64 `json:"cf1"`
	Cf2    float64 `json:"cf2"`
	Ratio  float64 `json:"ratio"`
	Z      float64 `json:"z"`
	PValue float64 `json:"p_value"`
}

func (s *Server) handleDetail(r *http.Request) (any, error) {
	sess, err := s.session(r)
	if err != nil {
		return nil, err
	}
	attr := r.URL.Query().Get("attr")
	class := r.URL.Query().Get("class")
	if attr == "" || class == "" {
		return nil, badRequest("detail requires attr and class query parameters")
	}
	maxPairs, err := intParam(r, "max_pairs", 0)
	if err != nil {
		return nil, err
	}
	values, err := sess.Values(attr)
	if err != nil {
		return nil, err
	}
	pairs, err := sess.ScreenPairs(attr, class, maxPairs)
	if err != nil {
		return nil, err
	}
	resp := &detailResponse{Attr: attr, Values: values}
	for _, p := range pairs {
		resp.Pairs = append(resp.Pairs, pairEntry{
			Value1: p.Value1,
			Value2: p.Value2,
			Cf1:    p.Cf1,
			Cf2:    p.Cf2,
			Ratio:  p.Ratio,
			Z:      p.Z,
			PValue: p.PValue,
		})
	}
	return resp, nil
}

// itemError is the wire form of a per-item failure annotation. The
// library type (opmap.ItemError) marshals its message under "err";
// clients were promised "error", so the DTO renames the field instead
// of leaking the internal tag onto the wire.
type itemError struct {
	Item  string `json:"item"`
	Error string `json:"error"`
}

func toItemErrors(in []opmap.ItemError) []itemError {
	if len(in) == 0 {
		return nil
	}
	out := make([]itemError, len(in))
	for i, ie := range in {
		out[i] = itemError{Item: ie.Item, Error: ie.Err}
	}
	return out
}

type compareResponse struct {
	Attr     string       `json:"attr"`
	Label1   string       `json:"label1"`
	Label2   string       `json:"label2"`
	Cf1      float64      `json:"cf1"`
	Cf2      float64      `json:"cf2"`
	Ratio    float64      `json:"ratio"`
	Class    string       `json:"class"`
	Partial  bool         `json:"partial"`
	Unscored []itemError  `json:"unscored,omitempty"`
	Ranked   []scoreEntry `json:"ranked"`
	Property []scoreEntry `json:"property,omitempty"`
}

func (c *compareResponse) partialResult() bool { return c.Partial }

type scoreEntry struct {
	Name          string  `json:"name"`
	Score         float64 `json:"score"`
	NormScore     float64 `json:"norm_score"`
	PropertyRatio float64 `json:"property_ratio,omitempty"`
}

// compareAllEntry is one value's comparison inside the all_values
// response, tagged with the value it compares against the rest.
type compareAllEntry struct {
	Value string `json:"value"`
	compareResponse
}

// compareAllResponse is the all_values=1 form of /api/compare: one
// entry per value of the attribute whose one-vs-rest comparison is
// defined on the data, plus the skipped values with their reasons.
type compareAllResponse struct {
	Attr        string            `json:"attr"`
	Class       string            `json:"class"`
	Partial     bool              `json:"partial"`
	Skipped     []itemError       `json:"skipped,omitempty"`
	Comparisons []compareAllEntry `json:"comparisons"`
}

func (c *compareAllResponse) partialResult() bool { return c.Partial }

// handleCompare serves the comparison forms: attr+v1+v2 compares the
// two values pairwise; attr+value compares value against the rest
// (degrading to a partial ranking on deadline expiry); all_values=1
// runs the one-vs-rest comparison for every value of attr in one
// shared-scan batch. The optional attrs parameter (comma-separated
// names) restricts the ranked attributes in any form.
func (s *Server) handleCompare(r *http.Request) (any, error) {
	sess, err := s.session(r)
	if err != nil {
		return nil, err
	}
	q := r.URL.Query()
	attr, class := q.Get("attr"), q.Get("class")
	if attr == "" || class == "" {
		return nil, badRequest("compare requires attr and class query parameters")
	}
	top, err := intParam(r, "top", 10)
	if err != nil {
		return nil, err
	}
	allValues, err := boolParam(r, "all_values")
	if err != nil {
		return nil, err
	}
	var opts opmap.CompareOptions
	if raw := q.Get("attrs"); raw != "" {
		opts.Attrs, err = attrList(strings.Split(raw, ","))
		if err != nil {
			return nil, err
		}
	}
	var cmp *opmap.Comparison
	switch {
	case allValues:
		opts.PartialOnDeadline = true
		all, err := sess.CompareOneVsRestAllContext(r.Context(), attr, class, opts)
		if err != nil {
			return nil, err
		}
		resp := &compareAllResponse{
			Attr:    all.Attr,
			Class:   class,
			Partial: all.Partial,
			Skipped: toItemErrors(all.Skipped),
		}
		for _, c := range all.Comparisons {
			value := c.Label1
			if value == "rest" {
				value = c.Label2
			}
			resp.Comparisons = append(resp.Comparisons, compareAllEntry{
				Value:           value,
				compareResponse: *toCompareResponse(c, top),
			})
		}
		return resp, nil
	case q.Get("value") != "":
		opts.PartialOnDeadline = true
		cmp, err = sess.CompareOneVsRestContext(r.Context(), attr, q.Get("value"), class, opts)
	case q.Get("v1") != "" && q.Get("v2") != "":
		cmp, err = sess.CompareContext(r.Context(), attr, q.Get("v1"), q.Get("v2"), class, opts)
	default:
		return nil, badRequest("compare requires v1 and v2, value (one-vs-rest), or all_values=1")
	}
	if err != nil {
		return nil, err
	}
	return toCompareResponse(cmp, top), nil
}

// toCompareResponse converts one comparison to its wire form, keeping
// the top entries of each ranking list.
func toCompareResponse(cmp *opmap.Comparison, top int) *compareResponse {
	resp := &compareResponse{
		Attr:     cmp.Attr,
		Label1:   cmp.Label1,
		Label2:   cmp.Label2,
		Cf1:      cmp.Cf1,
		Cf2:      cmp.Cf2,
		Ratio:    cmp.Ratio,
		Class:    cmp.Class,
		Partial:  cmp.Partial,
		Unscored: toItemErrors(cmp.Unscored),
	}
	for i, sc := range cmp.Ranked() {
		if i >= top {
			break
		}
		resp.Ranked = append(resp.Ranked, toScoreEntry(sc))
	}
	for i, sc := range cmp.PropertyAttributes() {
		if i >= top {
			break
		}
		resp.Property = append(resp.Property, toScoreEntry(sc))
	}
	return resp
}

func toScoreEntry(sc opmap.AttributeScore) scoreEntry {
	return scoreEntry{
		Name:          sc.Name,
		Score:         sc.Score,
		NormScore:     sc.NormScore,
		PropertyRatio: sc.PropertyRatio,
	}
}

type sweepResponse struct {
	PairsCompared int          `json:"pairs_compared"`
	PairsSkipped  int          `json:"pairs_skipped"`
	Partial       bool         `json:"partial"`
	Errors        []itemError  `json:"errors,omitempty"`
	Attributes    []sweepEntry `json:"attributes"`
}

func (s *sweepResponse) partialResult() bool { return s.Partial }

type sweepEntry struct {
	Name       string    `json:"name"`
	Pairs      int       `json:"pairs"`
	BestScore  float64   `json:"best_score"`
	BestPair   [2]string `json:"best_pair"`
	TotalScore float64   `json:"total_score"`
}

// handleSweep runs a degradable sweep: if the request deadline expires
// mid-fan-out the pairs compared so far are returned with partial=true
// and the skipped pairs annotated in errors.
func (s *Server) handleSweep(r *http.Request) (any, error) {
	sess, err := s.session(r)
	if err != nil {
		return nil, err
	}
	q := r.URL.Query()
	attr, class := q.Get("attr"), q.Get("class")
	if attr == "" || class == "" {
		return nil, badRequest("sweep requires attr and class query parameters")
	}
	maxPairs, err := intParam(r, "max_pairs", 0)
	if err != nil {
		return nil, err
	}
	res, err := sess.SweepPartial(r.Context(), attr, class, maxPairs)
	if err != nil {
		return nil, err
	}
	resp := &sweepResponse{
		PairsCompared: res.PairsCompared,
		PairsSkipped:  res.PairsSkipped,
		Partial:       res.Partial,
		Errors:        toItemErrors(res.Errors),
	}
	for _, a := range res.Attributes {
		resp.Attributes = append(resp.Attributes, sweepEntry{
			Name:       a.Name,
			Pairs:      a.Pairs,
			BestScore:  a.BestScore,
			BestPair:   a.BestPair,
			TotalScore: a.TotalScore,
		})
	}
	return resp, nil
}

type datasetsResponse struct {
	Default  string         `json:"default"`
	Datasets []datasetEntry `json:"datasets"`
}

type datasetEntry struct {
	Name      string `json:"name"`
	Rows      int    `json:"rows"`
	Class     string `json:"class"`
	Lazy      bool   `json:"lazy"`
	CubeCount int    `json:"cube_count"`
	// Snapshot reports the dataset's warm-start state ("loaded",
	// "seeded", "cold (stale)", ...) when the daemon serves with a
	// snapshot directory; absent otherwise.
	Snapshot string `json:"snapshot,omitempty"`
}

// handleDatasets lists the served datasets so clients can discover the
// dataset parameter's legal values. CubeCount on a lazy dataset is the
// cubes materialized so far, not the full space.
func (s *Server) handleDatasets(_ *http.Request) (any, error) {
	resp := &datasetsResponse{Default: s.defaultName}
	for _, name := range s.DatasetNames() {
		sess := s.sessions[name]
		entry := datasetEntry{
			Name:      name,
			Rows:      sess.NumRows(),
			Class:     sess.ClassAttribute(),
			Lazy:      sess.EngineStats().Lazy,
			CubeCount: sess.CubeCount(),
		}
		if s.snapStatus != nil {
			entry.Snapshot = s.snapStatus(name)
		}
		resp.Datasets = append(resp.Datasets, entry)
	}
	return resp, nil
}

// maxIngestBody bounds an ingest request body. A batch this size is
// already far past the point where splitting it beats one giant POST,
// so the limit protects memory without constraining real clients.
const maxIngestBody = 32 << 20

type ingestRequest struct {
	Rows [][]string `json:"rows"`
}

type ingestResponse struct {
	Dataset  string `json:"dataset"`
	Accepted int    `json:"accepted"`
	// Seq is the WAL sequence assigned to the batch. Once this response
	// is on the wire the batch is fsynced: a crash at any later point
	// replays it.
	Seq uint64 `json:"seq"`
}

// handleIngest accepts a POST with a JSON body of rows (textual values
// in schema order, "?" for missing) and appends them durably to the
// dataset: WAL first (fsynced before the response), in-memory state
// through the bounded apply queue. A full queue answers 503 with
// Retry-After — the batch was not accepted and should be resent as-is.
func (s *Server) handleIngest(r *http.Request) (any, error) {
	if r.Method != http.MethodPost {
		return nil, &httpError{status: http.StatusMethodNotAllowed, msg: "ingest requires POST"}
	}
	if s.ingest == nil {
		return nil, &httpError{status: http.StatusServiceUnavailable, msg: "ingestion disabled (start opmapd with -wal-dir)"}
	}
	name := r.URL.Query().Get("dataset")
	if name == "" {
		name = s.defaultName
	}
	if _, ok := s.sessions[name]; !ok {
		return nil, badRequest("unknown dataset %q (GET /api/datasets lists the served datasets)", name)
	}
	var req ingestRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxIngestBody))
	if err := dec.Decode(&req); err != nil {
		return nil, badRequest("ingest body: %v", err)
	}
	if len(req.Rows) == 0 {
		return nil, badRequest(`ingest body has no rows (expected {"rows": [[...], ...]})`)
	}
	seq, err := s.ingest(r.Context(), name, req.Rows)
	if err != nil {
		if errors.Is(err, ErrBackpressure) {
			s.metrics.Counter(metricIngestSheds).Inc()
			return nil, &httpError{
				status:     http.StatusServiceUnavailable,
				msg:        fmt.Sprintf("ingest queue full for dataset %q; retry the batch", name),
				retryAfter: shedRetryAfterSeconds,
			}
		}
		return nil, err
	}
	s.metrics.Counter(metricIngestRows).Add(int64(len(req.Rows)))
	return &ingestResponse{Dataset: name, Accepted: len(req.Rows), Seq: seq}, nil
}

// attrList validates a client-supplied ranked-attribute restriction
// list: entries are trimmed, an empty name is rejected, and a
// duplicate fails the request naming the offender. Duplicates used to
// pass through verbatim, and the compare layer ranks an explicit list
// as given — so attrs=A,A scored A twice and listed it twice in the
// response. The restriction is a set; rejecting duplicates here keeps
// a client bug visible instead of silently double-counting. Shared by
// the compare and drilldown endpoints so both enforce the same rule.
func attrList(names []string) ([]string, error) {
	seen := make(map[string]struct{}, len(names))
	out := make([]string, 0, len(names))
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, badRequest("attrs list contains an empty attribute name")
		}
		if _, dup := seen[name]; dup {
			return nil, badRequest("attrs list names %q twice", name)
		}
		seen[name] = struct{}{}
		out = append(out, name)
	}
	return out, nil
}

// maxDrilldownBody bounds a drill-down request body. The request is a
// small JSON object of names and knobs; 1 MiB is far beyond any
// legitimate attrs list.
const maxDrilldownBody = 1 << 20

// drilldownRequest is the POST /api/drilldown body. Zero-valued knobs
// take the library defaults (depth 2, beam 8, 256 nodes, support 8,
// the paper measure).
type drilldownRequest struct {
	Attr       string   `json:"attr"`
	V1         string   `json:"v1"`
	V2         string   `json:"v2"`
	Class      string   `json:"class"`
	MaxDepth   int      `json:"max_depth"`
	Beam       int      `json:"beam"`
	MaxNodes   int      `json:"max_nodes"`
	MinSupport int64    `json:"min_support"`
	Measure    string   `json:"measure"`
	Attrs      []string `json:"attrs"`
	Top        int      `json:"top"`
}

type drillCondEntry struct {
	Attr  string `json:"attr"`
	Value string `json:"value"`
}

type drillFindingEntry struct {
	Conds []drillCondEntry `json:"conds"`
	Depth int              `json:"depth"`
	Score float64          `json:"score"`
	Raw   float64          `json:"raw"`
	N1    int64            `json:"n1"`
	C1    int64            `json:"c1"`
	N2    int64            `json:"n2"`
	C2    int64            `json:"c2"`
	Cf1   float64          `json:"cf1"`
	Cf2   float64          `json:"cf2"`
}

type drilldownResponse struct {
	Attr       string              `json:"attr"`
	Label1     string              `json:"label1"`
	Label2     string              `json:"label2"`
	Class      string              `json:"class"`
	Cf1        float64             `json:"cf1"`
	Cf2        float64             `json:"cf2"`
	Ratio      float64             `json:"ratio"`
	Measure    string              `json:"measure"`
	Expanded   int                 `json:"expanded"`
	Partial    bool                `json:"partial"`
	Unexplored []itemError         `json:"unexplored,omitempty"`
	Findings   []drillFindingEntry `json:"findings"`
}

func (d *drilldownResponse) partialResult() bool { return d.Partial }

// handleDrilldown runs a multi-condition drill-down: the attr=v1 vs
// attr=v2 comparison followed by a beam search over condition
// conjunctions inside the refined sub-populations. POST with a JSON
// body because the parameter set (search knobs plus an attribute
// list) outgrows a query string. The search degrades on deadline
// expiry like the other long-running endpoints: findings collected so
// far come back with partial=true and the unexplored frontier
// annotated.
func (s *Server) handleDrilldown(r *http.Request) (any, error) {
	if r.Method != http.MethodPost {
		return nil, &httpError{status: http.StatusMethodNotAllowed, msg: "drilldown requires POST"}
	}
	sess, err := s.session(r)
	if err != nil {
		return nil, err
	}
	var req drilldownRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxDrilldownBody))
	if err := dec.Decode(&req); err != nil {
		return nil, badRequest("drilldown body: %v", err)
	}
	if req.Attr == "" || req.V1 == "" || req.V2 == "" || req.Class == "" {
		return nil, badRequest("drilldown requires attr, v1, v2 and class")
	}
	for _, knob := range []struct {
		name string
		v    int64
	}{
		{"max_depth", int64(req.MaxDepth)},
		{"beam", int64(req.Beam)},
		{"max_nodes", int64(req.MaxNodes)},
		{"min_support", req.MinSupport},
		{"top", int64(req.Top)},
	} {
		if knob.v < 0 {
			return nil, badRequest("drilldown %s=%d must be non-negative", knob.name, knob.v)
		}
	}
	var attrs []string
	if len(req.Attrs) > 0 {
		attrs, err = attrList(req.Attrs)
		if err != nil {
			return nil, err
		}
	}
	res, err := sess.DrillDownContext(r.Context(), req.Attr, req.V1, req.V2, req.Class, opmap.DrillOptions{
		Compare:           opmap.CompareOptions{Attrs: attrs},
		MaxDepth:          req.MaxDepth,
		Beam:              req.Beam,
		MaxNodes:          req.MaxNodes,
		MinSupport:        req.MinSupport,
		Measure:           req.Measure,
		PartialOnDeadline: true,
	})
	if err != nil {
		return nil, err
	}
	top := req.Top
	if top == 0 {
		top = 10
	}
	resp := &drilldownResponse{
		Attr:       res.Attr,
		Label1:     res.Label1,
		Label2:     res.Label2,
		Class:      res.Class,
		Cf1:        res.Cf1,
		Cf2:        res.Cf2,
		Ratio:      res.Ratio,
		Measure:    res.Measure,
		Expanded:   res.Expanded,
		Partial:    res.Partial,
		Unexplored: toItemErrors(res.Unexplored),
	}
	for _, f := range res.Top(top) {
		entry := drillFindingEntry{
			Depth: f.Depth,
			Score: f.Score,
			Raw:   f.Raw,
			N1:    f.N1, C1: f.C1, N2: f.N2, C2: f.C2,
			Cf1: f.Cf1, Cf2: f.Cf2,
		}
		for _, c := range f.Conds {
			entry.Conds = append(entry.Conds, drillCondEntry{Attr: c.Attr, Value: c.Value})
		}
		resp.Findings = append(resp.Findings, entry)
	}
	return resp, nil
}

// intParam parses a non-negative integer query parameter, falling back
// to def only when the parameter is absent. A malformed or negative
// value is a client error and fails the request with 400 — silently
// substituting the default here used to mask typos like ?top=abc and
// made ?top=-3 behave as an unbounded limit.
func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, badRequest("query parameter %s=%q is not an integer", name, v)
	}
	if n < 0 {
		return 0, badRequest("query parameter %s=%d must be non-negative", name, n)
	}
	return n, nil
}

// boolParam parses a boolean query parameter; absence means false. A
// malformed value fails the request with 400 for the same reason
// intParam does: ?all_values=ture silently meaning "off" masks typos.
func boolParam(r *http.Request, name string) (bool, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return false, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, badRequest("query parameter %s=%q is not a boolean", name, v)
	}
	return b, nil
}
