package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"opmap/internal/faultinject"
)

func postJSON(t *testing.T, base, path, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// recordingIngest is a Config.Ingest stub that remembers the batches
// it accepted and hands out sequential WAL sequence numbers.
type recordingIngest struct {
	mu      sync.Mutex
	seq     uint64
	batches [][][]string
	fail    error
}

func (ri *recordingIngest) ingest(_ context.Context, _ string, rows [][]string) (uint64, error) {
	ri.mu.Lock()
	defer ri.mu.Unlock()
	if ri.fail != nil {
		return 0, ri.fail
	}
	ri.seq++
	ri.batches = append(ri.batches, rows)
	return ri.seq, nil
}

func TestIngestEndpoint(t *testing.T) {
	ri := &recordingIngest{}
	_, ts := newTestServer(t, Config{Ingest: ri.ingest})

	resp := postJSON(t, ts.URL, "/api/ingest", `{"rows": [["a","b"],["c","d"]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d, want 200", resp.StatusCode)
	}
	var out struct {
		Dataset  string `json:"dataset"`
		Accepted int    `json:"accepted"`
		Seq      uint64 `json:"seq"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Dataset != DefaultDatasetName || out.Accepted != 2 || out.Seq != 1 {
		t.Errorf("response = %+v", out)
	}
	ri.mu.Lock()
	if len(ri.batches) != 1 || len(ri.batches[0]) != 2 {
		t.Errorf("hook saw batches %v", ri.batches)
	}
	ri.mu.Unlock()

	// Method, body and dataset validation.
	if code, _ := get(t, ts.URL, "/api/ingest"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET ingest = %d, want 405", code)
	}
	if resp := postJSON(t, ts.URL, "/api/ingest", `{"rows": []}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty rows = %d, want 400", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL, "/api/ingest", `{not json`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL, "/api/ingest?dataset=nope", `{"rows": [["a"]]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown dataset = %d, want 400", resp.StatusCode)
	}
}

func TestIngestDisabledWithoutHook(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL, "/api/ingest", `{"rows": [["a"]]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("ingest without hook = %d, want 503", resp.StatusCode)
	}
}

// TestRetryAfterOnSheds covers both load-shedding paths: the
// middleware's 429 (too many requests in flight) and ingest's 503
// (apply queue backpressure) must each carry a Retry-After header so
// clients back off instead of hammering.
func TestRetryAfterOnSheds(t *testing.T) {
	for _, tc := range []struct {
		name       string
		wantStatus int
		provoke    func(t *testing.T) *http.Response
	}{
		{
			name:       "429 inflight shed",
			wantStatus: http.StatusTooManyRequests,
			provoke: func(t *testing.T) *http.Response {
				defer faultinject.Reset()
				_, ts := newTestServer(t, Config{MaxInFlight: 1})
				disarm, err := faultinject.Arm(faultinject.Fault{
					Site:  faultinject.SiteServerHandle,
					Kind:  faultinject.Delay,
					Delay: 400 * time.Millisecond,
					Times: 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer disarm()
				done := make(chan struct{})
				go func() {
					defer close(done)
					if resp, err := http.Get(ts.URL + "/api/overview"); err == nil {
						resp.Body.Close()
					}
				}()
				t.Cleanup(func() { <-done })
				time.Sleep(100 * time.Millisecond) // let the first request occupy the slot
				resp, err := http.Get(ts.URL + "/api/overview")
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { resp.Body.Close() })
				return resp
			},
		},
		{
			name:       "503 ingest backpressure",
			wantStatus: http.StatusServiceUnavailable,
			provoke: func(t *testing.T) *http.Response {
				ri := &recordingIngest{fail: fmt.Errorf("queue: %w", ErrBackpressure)}
				s, ts := newTestServer(t, Config{Ingest: ri.ingest})
				resp := postJSON(t, ts.URL, "/api/ingest", `{"rows": [["a"]]}`)
				if got := s.metrics.Counter(metricIngestSheds).Value(); got != 1 {
					t.Errorf("%s = %d, want 1", metricIngestSheds, got)
				}
				return resp
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp := tc.provoke(t)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if got := resp.Header.Get("Retry-After"); got != "1" {
				t.Errorf("Retry-After = %q, want %q", got, "1")
			}
		})
	}
}

// TestReadyzReportsReplay: while any dataset's WAL replay runs,
// /readyz answers 503 naming the replaying datasets; once replay
// finishes it flips back to 200 with every dataset "ready".
func TestReadyzReportsReplay(t *testing.T) {
	replaying := true
	var mu sync.Mutex
	_, ts := newTestServer(t, Config{
		IngestStatus: func(string) bool {
			mu.Lock()
			defer mu.Unlock()
			return replaying
		},
	})

	code, body := get(t, ts.URL, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("readyz while replaying = %d, want 503", code)
	}
	var out struct {
		Status string            `json:"status"`
		Ingest map[string]string `json:"ingest"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "replaying" || out.Ingest[DefaultDatasetName] != "replaying" {
		t.Errorf("readyz body = %+v", out)
	}

	mu.Lock()
	replaying = false
	mu.Unlock()
	code, body = get(t, ts.URL, "/readyz")
	if code != http.StatusOK {
		t.Errorf("readyz after replay = %d, want 200", code)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "ready" || out.Ingest[DefaultDatasetName] != "ready" {
		t.Errorf("readyz body = %+v", out)
	}
}
