// Package explore implements the interactive exploration session at the
// heart of the deployed Opportunity Map: the user moves between the
// overall view, detailed attribute views and comparisons through
// primitive operations (Section I: "each operation is primitive and has
// to be initiated by the user"), with the comparator automating the
// expensive step. The Explorer keeps a navigation history so "back"
// works, and a small line-oriented command language drives it — the
// scriptable, testable equivalent of the GUI.
package explore

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"opmap/internal/compare"
	"opmap/internal/drill"
	"opmap/internal/engine"
	"opmap/internal/gi"
	"opmap/internal/rulecube"
	"opmap/internal/visual"
)

// view is one entry in the navigation history.
type view struct {
	kind string // "overview", "detail", "compare", "pairs", "impressions", ...
	// render redraws the view (history replay after "back").
	render func(w io.Writer) error
	// cmp holds the comparison backing "focus"/"property" follow-ups.
	cmp    *compare.Result
	label1 string
	label2 string
}

// Explorer is an interactive session over a cube store.
type Explorer struct {
	store *rulecube.Store
	cmp   *compare.Comparator
	stack []view
}

// New creates an explorer over the store.
func New(store *rulecube.Store) *Explorer {
	return &Explorer{store: store, cmp: compare.New(store)}
}

// Depth returns the navigation-history depth.
func (e *Explorer) Depth() int { return len(e.stack) }

// push records and renders a view.
func (e *Explorer) push(w io.Writer, v view) error {
	if err := v.render(w); err != nil {
		return err
	}
	e.stack = append(e.stack, v)
	return nil
}

// current returns the top view, or nil.
func (e *Explorer) current() *view {
	if len(e.stack) == 0 {
		return nil
	}
	return &e.stack[len(e.stack)-1]
}

// Back pops the current view and re-renders the previous one.
func (e *Explorer) Back(w io.Writer) error {
	if len(e.stack) <= 1 {
		return fmt.Errorf("explore: nothing to go back to")
	}
	e.stack = e.stack[:len(e.stack)-1]
	return e.current().render(w)
}

// attrIndex resolves an attribute name against the store's dataset.
func (e *Explorer) attrIndex(name string) (int, error) {
	ds := e.store.Dataset()
	a := ds.AttrIndex(name)
	if a < 0 {
		return 0, fmt.Errorf("explore: unknown attribute %q", name)
	}
	return a, nil
}

func (e *Explorer) valueCode(attr int, label string) (int32, error) {
	dict := e.store.Dataset().Column(attr).Dict
	v, ok := dict.Lookup(label)
	if !ok {
		return 0, fmt.Errorf("explore: attribute %q has no value %q", e.store.Dataset().Attr(attr).Name, label)
	}
	return v, nil
}

func (e *Explorer) classCode(label string) (int32, error) {
	c, ok := e.store.Dataset().ClassDict().Lookup(label)
	if !ok {
		return 0, fmt.Errorf("explore: unknown class %q", label)
	}
	return c, nil
}

// Overview pushes the Fig. 5 overall view.
func (e *Explorer) Overview(w io.Writer) error {
	render := func(w io.Writer) error {
		rep, err := gi.MineAll(e.store, gi.TrendOptions{}, gi.ExceptionOptions{})
		if err != nil {
			return err
		}
		return visual.Overall(w, e.store, visual.OverallOptions{Scale: true, Trends: rep.Trends})
	}
	return e.push(w, view{kind: "overview", render: render})
}

// Detail pushes the Fig. 6 detailed view of one attribute.
func (e *Explorer) Detail(w io.Writer, attr string) error {
	a, err := e.attrIndex(attr)
	if err != nil {
		return err
	}
	cube := e.store.Cube1(a)
	if cube == nil {
		return fmt.Errorf("explore: attribute %q not materialized", attr)
	}
	render := func(w io.Writer) error { return visual.Detailed(w, cube) }
	return e.push(w, view{kind: "detail", render: render})
}

// Detail3D pushes the 3-D view of two attributes × class.
func (e *Explorer) Detail3D(w io.Writer, attr1, attr2 string) error {
	a, err := e.attrIndex(attr1)
	if err != nil {
		return err
	}
	b, err := e.attrIndex(attr2)
	if err != nil {
		return err
	}
	cube := e.store.Cube2(a, b)
	if cube == nil {
		return fmt.Errorf("explore: pair (%s,%s) not materialized", attr1, attr2)
	}
	render := func(w io.Writer) error { return visual.Detailed3D(w, cube) }
	return e.push(w, view{kind: "detail3", render: render})
}

// Compare pushes a comparison view (ranking plus top attribute).
func (e *Explorer) Compare(w io.Writer, attr, v1, v2, class string) error {
	a, err := e.attrIndex(attr)
	if err != nil {
		return err
	}
	c1, err := e.valueCode(a, v1)
	if err != nil {
		return err
	}
	c2, err := e.valueCode(a, v2)
	if err != nil {
		return err
	}
	cls, err := e.classCode(class)
	if err != nil {
		return err
	}
	res, err := e.cmp.Compare(compare.Input{Attr: a, V1: c1, V2: c2, Class: cls}, compare.Options{})
	if err != nil {
		return err
	}
	dict := e.store.Dataset().Column(a).Dict
	l1 := dict.Label(res.Rule1.Conditions[0].Value)
	l2 := dict.Label(res.Rule2.Conditions[0].Value)
	render := func(w io.Writer) error {
		fmt.Fprintf(w, "compare %s: %s (%.3f%%) vs %s (%.3f%%) on %s\n",
			attr, l1, 100*res.Cf1, l2, 100*res.Cf2, class)
		visual.Ranking(w, res, 10)
		return nil
	}
	return e.push(w, view{kind: "compare", render: render, cmp: res, label1: l1, label2: l2})
}

// Drill pushes a multi-condition drill-down view: the comparison's
// highest-contribution branches expanded into condition conjunctions,
// surfacing effects no single attribute's ranking shows. depth 0 uses
// the default (two conditions). The view keeps the root comparison,
// so "focus" follow-ups work like after "compare".
func (e *Explorer) Drill(w io.Writer, attr, v1, v2, class string, depth int) error {
	a, err := e.attrIndex(attr)
	if err != nil {
		return err
	}
	c1, err := e.valueCode(a, v1)
	if err != nil {
		return err
	}
	c2, err := e.valueCode(a, v2)
	if err != nil {
		return err
	}
	cls, err := e.classCode(class)
	if err != nil {
		return err
	}
	res, err := drill.New(engine.NewEager(e.store)).Drill(
		compare.Input{Attr: a, V1: c1, V2: c2, Class: cls},
		drill.Options{MaxDepth: depth},
	)
	if err != nil {
		return err
	}
	dict := e.store.Dataset().Column(a).Dict
	l1 := dict.Label(res.Root.Rule1.Conditions[0].Value)
	l2 := dict.Label(res.Root.Rule2.Conditions[0].Value)
	render := func(w io.Writer) error {
		fmt.Fprintf(w, "drill %s: %s (%.3f%%) vs %s (%.3f%%) on %s, measure=%s\n",
			attr, l1, 100*res.Root.Cf1, l2, 100*res.Root.Cf2, class, res.Measure)
		fmt.Fprintf(w, "%-3s %-44s %8s %9s %9s %7s\n", "#", "conditions", "score", "rate-lo", "rate-hi", "n-hi")
		for i, f := range res.Findings {
			if i >= 10 {
				break
			}
			fmt.Fprintf(w, "%-3d %-44s %8.4f %8.3f%% %8.3f%% %7d\n",
				i+1, f.Label(), f.Score, 100*f.Cf1, 100*f.Cf2, f.N2)
		}
		if res.Partial {
			fmt.Fprintf(w, "(partial: %d branches unexplored)\n", len(res.Unexplored))
		}
		return nil
	}
	return e.push(w, view{kind: "drill", render: render, cmp: res.Root, label1: l1, label2: l2})
}

// Focus renders the Fig. 7 view of one attribute of the current
// comparison (or its rank-1 attribute when name is empty).
func (e *Explorer) Focus(w io.Writer, name string) error {
	cur := e.current()
	if cur == nil || cur.cmp == nil {
		return fmt.Errorf("explore: focus requires a comparison view; run compare first")
	}
	res := cur.cmp
	if name == "" {
		if len(res.Ranked) == 0 {
			return fmt.Errorf("explore: the comparison ranked no attributes")
		}
		name = res.Ranked[0].Name
	}
	score, _, ok := res.Find(name)
	if !ok {
		return fmt.Errorf("explore: attribute %q not in the comparison", name)
	}
	l1, l2 := cur.label1, cur.label2
	render := func(w io.Writer) error {
		if score.Property {
			visual.PropertyView(w, score, l1, l2)
			return nil
		}
		visual.Comparison(w, res, score, l1, l2)
		return nil
	}
	return e.push(w, view{kind: "focus", render: render, cmp: res, label1: l1, label2: l2})
}

// Pairs pushes the screening view of an attribute.
func (e *Explorer) Pairs(w io.Writer, attr, class string, topN int) error {
	a, err := e.attrIndex(attr)
	if err != nil {
		return err
	}
	cls, err := e.classCode(class)
	if err != nil {
		return err
	}
	pairs, err := e.cmp.ScreenPairs(a, cls, compare.ScreenOptions{MaxPairs: topN})
	if err != nil {
		return err
	}
	render := func(w io.Writer) error {
		fmt.Fprintf(w, "%-14s %-14s %9s %9s %7s %9s\n", "low", "high", "rate-lo", "rate-hi", "z", "q")
		for _, p := range pairs {
			fmt.Fprintf(w, "%-14s %-14s %8.3f%% %8.3f%% %7.1f %9.2g\n",
				p.Label1, p.Label2, 100*p.Cf1, 100*p.Cf2, p.Z, p.QValue)
		}
		return nil
	}
	return e.push(w, view{kind: "pairs", render: render})
}

// Sweep pushes the systemic-vs-specific summary: every significant pair
// of attr compared, distinguishing attributes aggregated.
func (e *Explorer) Sweep(w io.Writer, attr, class string) error {
	a, err := e.attrIndex(attr)
	if err != nil {
		return err
	}
	cls, err := e.classCode(class)
	if err != nil {
		return err
	}
	res, err := e.cmp.Sweep(a, cls, compare.SweepOptions{})
	if err != nil {
		return err
	}
	render := func(w io.Writer) error {
		fmt.Fprintf(w, "swept %d significant pairs (%d skipped)\n", res.PairsCompared, res.PairsSkipped)
		for _, sa := range res.Attributes {
			fmt.Fprintf(w, "  %-28s pairs=%-3d best M=%.1f (%s vs %s)\n",
				sa.Name, sa.Pairs, sa.BestScore, sa.BestPair[0], sa.BestPair[1])
		}
		return nil
	}
	return e.push(w, view{kind: "sweep", render: render})
}

// Impressions pushes the GI-miner summary view.
func (e *Explorer) Impressions(w io.Writer) error {
	render := func(w io.Writer) error {
		rep, err := gi.MineAll(e.store, gi.TrendOptions{}, gi.ExceptionOptions{})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Influential attributes:")
		for i, inf := range rep.Influential {
			if i >= 8 {
				break
			}
			fmt.Fprintf(w, "  %2d. %-28s chi2=%.1f MI=%.5f\n", i+1, inf.AttrName, inf.ChiSquare, inf.MutualInformation)
		}
		fmt.Fprintln(w, "Trends:")
		for _, tr := range rep.Trends {
			fmt.Fprintf(w, "  %s: %s is %s\n", tr.ClassLabel, tr.AttrName, tr.Kind)
		}
		return nil
	}
	return e.push(w, view{kind: "impressions", render: render})
}

// Attributes lists the store's attribute names.
func (e *Explorer) Attributes() []string {
	ds := e.store.Dataset()
	var names []string
	for _, a := range e.store.Attrs() {
		names = append(names, ds.Attr(a).Name)
	}
	sort.Strings(names)
	return names
}

// helpText documents the command language.
const helpText = `commands:
  overview                                  Fig. 5 overall view
  detail <attr>                             Fig. 6 view of one attribute
  detail3 <attr1> <attr2>                   3-D rule cube view of two attributes
  pairs <attr> <class> [n]                  screen value pairs worth comparing
  sweep <attr> <class>                      compare all significant pairs, aggregate causes
  compare <attr> <v1> <v2> <class>          the Section IV automated comparison
  drill <attr> <v1> <v2> <class> [depth]    multi-condition drill-down of a comparison
  focus [attr]                              Fig. 7/8 view of a compared attribute
  impressions                               trends / exceptions / influence
  attrs                                     list attributes
  back                                      previous view
  help                                      this text
  quit                                      end the session
`

// Run drives the explorer with a line-oriented command stream (the REPL
// behind `opmap repl`). It stops at EOF or "quit". Command errors are
// reported to the output and do not end the session.
func (e *Explorer) Run(r io.Reader, w io.Writer) error {
	if err := e.Overview(w); err != nil {
		return err
	}
	sc := bufio.NewScanner(r)
	for {
		fmt.Fprint(w, "opmap> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if done := e.exec(w, line); done {
			return nil
		}
	}
	return sc.Err()
}

// RunScript executes newline-separated commands (the testable entry
// point; `opmap repl` feeds it the terminal). Returns the first I/O
// error; command errors are printed and skipped.
func (e *Explorer) RunScript(script string, w io.Writer) error {
	if err := e.Overview(w); err != nil {
		return err
	}
	for _, raw := range strings.Split(script, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fmt.Fprintf(w, "opmap> %s\n", line)
		if done := e.exec(w, line); done {
			break
		}
	}
	return nil
}

// exec parses and executes one command line; returns true on quit.
func (e *Explorer) exec(w io.Writer, line string) bool {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return false
	}
	var err error
	switch fields[0] {
	case "quit", "exit":
		return true
	case "help":
		fmt.Fprint(w, helpText)
	case "attrs":
		for _, n := range e.Attributes() {
			fmt.Fprintln(w, n)
		}
	case "overview":
		err = e.Overview(w)
	case "detail":
		if len(fields) != 2 {
			err = fmt.Errorf("usage: detail <attr>")
		} else {
			err = e.Detail(w, fields[1])
		}
	case "detail3":
		if len(fields) != 3 {
			err = fmt.Errorf("usage: detail3 <attr1> <attr2>")
		} else {
			err = e.Detail3D(w, fields[1], fields[2])
		}
	case "pairs":
		switch len(fields) {
		case 3:
			err = e.Pairs(w, fields[1], fields[2], 10)
		case 4:
			n := 0
			if _, serr := fmt.Sscanf(fields[3], "%d", &n); serr != nil || n < 1 {
				err = fmt.Errorf("usage: pairs <attr> <class> [n]")
			} else {
				err = e.Pairs(w, fields[1], fields[2], n)
			}
		default:
			err = fmt.Errorf("usage: pairs <attr> <class> [n]")
		}
	case "sweep":
		if len(fields) != 3 {
			err = fmt.Errorf("usage: sweep <attr> <class>")
		} else {
			err = e.Sweep(w, fields[1], fields[2])
		}
	case "compare":
		if len(fields) != 5 {
			err = fmt.Errorf("usage: compare <attr> <v1> <v2> <class>")
		} else {
			err = e.Compare(w, fields[1], fields[2], fields[3], fields[4])
		}
	case "drill":
		switch len(fields) {
		case 5:
			err = e.Drill(w, fields[1], fields[2], fields[3], fields[4], 0)
		case 6:
			d := 0
			if _, serr := fmt.Sscanf(fields[5], "%d", &d); serr != nil || d < 1 {
				err = fmt.Errorf("usage: drill <attr> <v1> <v2> <class> [depth]")
			} else {
				err = e.Drill(w, fields[1], fields[2], fields[3], fields[4], d)
			}
		default:
			err = fmt.Errorf("usage: drill <attr> <v1> <v2> <class> [depth]")
		}
	case "focus":
		name := ""
		if len(fields) > 1 {
			name = fields[1]
		}
		err = e.Focus(w, name)
	case "impressions":
		err = e.Impressions(w)
	case "back":
		err = e.Back(w)
	default:
		err = fmt.Errorf("unknown command %q (try help)", fields[0])
	}
	if err != nil {
		fmt.Fprintf(w, "error: %v\n", err)
	}
	return false
}
