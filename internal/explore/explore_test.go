package explore

import (
	"bytes"
	"strings"
	"testing"

	"opmap/internal/rulecube"
	"opmap/internal/workload"
)

func explorer(t *testing.T) (*Explorer, workload.GroundTruth) {
	t.Helper()
	ds, gt, err := workload.CallLog(workload.CallLogConfig{Seed: 8, Records: 30000, NoiseAttrs: 2})
	if err != nil {
		t.Fatal(err)
	}
	store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return New(store), gt
}

func TestExplorerNavigationFlow(t *testing.T) {
	e, gt := explorer(t)
	var buf bytes.Buffer

	if err := e.Overview(&buf); err != nil {
		t.Fatal(err)
	}
	if e.Depth() != 1 {
		t.Fatalf("depth = %d", e.Depth())
	}
	if err := e.Detail(&buf, gt.PhoneAttr); err != nil {
		t.Fatal(err)
	}
	if err := e.Compare(&buf, gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass); err != nil {
		t.Fatal(err)
	}
	if err := e.Focus(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if e.Depth() != 4 {
		t.Fatalf("depth = %d, want 4", e.Depth())
	}
	// The focused attribute must be the planted one.
	if !strings.Contains(buf.String(), gt.DistinguishingAttr) {
		t.Error("focus did not surface the top attribute")
	}

	// Back pops and re-renders the comparison view.
	buf.Reset()
	if err := e.Back(&buf); err != nil {
		t.Fatal(err)
	}
	if e.Depth() != 3 {
		t.Fatalf("depth after back = %d", e.Depth())
	}
	if !strings.Contains(buf.String(), "Attribute ranking") {
		t.Error("back did not re-render the comparison")
	}
}

func TestExplorerFocusProperty(t *testing.T) {
	e, gt := explorer(t)
	var buf bytes.Buffer
	if err := e.Compare(&buf, gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := e.Focus(&buf, gt.PropertyAttr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 count") {
		t.Error("property focus missing zero-count marker")
	}
}

func TestExplorerErrors(t *testing.T) {
	e, gt := explorer(t)
	var buf bytes.Buffer
	if err := e.Back(&buf); err == nil {
		t.Error("back on empty history should fail")
	}
	if err := e.Detail(&buf, "nope"); err == nil {
		t.Error("unknown attribute should fail")
	}
	if err := e.Focus(&buf, ""); err == nil {
		t.Error("focus without a comparison should fail")
	}
	if err := e.Compare(&buf, gt.PhoneAttr, "nope", gt.BadPhone, gt.DropClass); err == nil {
		t.Error("unknown value should fail")
	}
	if err := e.Compare(&buf, gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, "nope"); err == nil {
		t.Error("unknown class should fail")
	}
	if err := e.Pairs(&buf, "nope", gt.DropClass, 5); err == nil {
		t.Error("unknown pairs attribute should fail")
	}
}

func TestRunScriptFullSession(t *testing.T) {
	e, gt := explorer(t)
	script := strings.Join([]string{
		"# a typical investigation",
		"attrs",
		"detail " + gt.PhoneAttr,
		"pairs " + gt.PhoneAttr + " " + gt.DropClass + " 3",
		"compare " + gt.PhoneAttr + " " + gt.GoodPhone + " " + gt.BadPhone + " " + gt.DropClass,
		"focus",
		"back",
		"focus " + gt.PropertyAttr,
		"impressions",
		"bogus-command",
		"help",
		"quit",
		"detail should-never-run",
	}, "\n")
	var buf bytes.Buffer
	if err := e.RunScript(script, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Overall visualization",           // initial overview
		gt.PhoneAttr,                      // attrs + detail
		"rate-lo",                         // pairs header
		"Attribute ranking",               // compare
		gt.DistinguishingAttr,             // focus on top attribute
		"0 count",                         // property focus
		"Influential attributes",          // impressions
		`unknown command "bogus-command"`, // error handling
		"commands:",                       // help
	} {
		if !strings.Contains(out, want) {
			t.Errorf("session transcript missing %q", want)
		}
	}
	if strings.Contains(out, "should-never-run") {
		t.Error("commands after quit must not run")
	}
}

func TestRunScannerSession(t *testing.T) {
	e, gt := explorer(t)
	in := strings.NewReader("detail " + gt.PhoneAttr + "\nquit\n")
	var buf bytes.Buffer
	if err := e.Run(in, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "opmap> ") {
		t.Error("prompt missing")
	}
	if !strings.Contains(buf.String(), gt.GoodPhone) {
		t.Error("detail view missing")
	}
}

func TestRunStopsAtEOF(t *testing.T) {
	e, _ := explorer(t)
	var buf bytes.Buffer
	if err := e.Run(strings.NewReader(""), &buf); err != nil {
		t.Fatal(err)
	}
}

func TestPairsCommandArgValidation(t *testing.T) {
	e, gt := explorer(t)
	var buf bytes.Buffer
	script := "pairs " + gt.PhoneAttr + " " + gt.DropClass + " not-a-number"
	if err := e.RunScript(script, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "usage: pairs") {
		t.Error("bad count should print usage")
	}
}

func TestExplorerDetail3D(t *testing.T) {
	e, gt := explorer(t)
	var buf bytes.Buffer
	if err := e.Detail3D(&buf, gt.PhoneAttr, gt.DistinguishingAttr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), gt.GoodPhone) {
		t.Error("3-D view missing values")
	}
	if err := e.Detail3D(&buf, "nope", gt.DistinguishingAttr); err == nil {
		t.Error("unknown attribute should fail")
	}
	// Via the command language too.
	buf.Reset()
	if err := e.RunScript("detail3 "+gt.PhoneAttr+" "+gt.DistinguishingAttr+"\nquit", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "morning") {
		t.Error("detail3 command broken")
	}
	buf.Reset()
	if err := e.RunScript("detail3 onlyone", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "usage: detail3") {
		t.Error("arg validation missing")
	}
}

func TestExplorerSweepCommand(t *testing.T) {
	e, gt := explorer(t)
	var buf bytes.Buffer
	script := "sweep " + gt.PhoneAttr + " " + gt.DropClass + "\nquit"
	if err := e.RunScript(script, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), gt.DistinguishingAttr) {
		t.Error("sweep output missing the planted attribute")
	}
	buf.Reset()
	if err := e.RunScript("sweep onlyone", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "usage: sweep") {
		t.Error("arg validation missing")
	}
}

// TestExplorerDrillCommand runs a drill-down through the command
// language: the view renders scored condition paths, keeps the root
// comparison for focus follow-ups, and validates its arguments.
func TestExplorerDrillCommand(t *testing.T) {
	e, gt := explorer(t)
	var buf bytes.Buffer
	script := strings.Join([]string{
		"drill " + gt.PhoneAttr + " " + gt.GoodPhone + " " + gt.BadPhone + " " + gt.DropClass,
		"focus",
		"quit",
	}, "\n")
	if err := e.RunScript(script, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "measure=paper") {
		t.Errorf("drill view missing the measure header:\n%s", out)
	}
	if !strings.Contains(out, "conditions") {
		t.Errorf("drill view missing the findings table:\n%s", out)
	}
	// The planted attribute drives the comparison, so it must appear in
	// some finding's condition path.
	if !strings.Contains(out, gt.DistinguishingAttr+"=") {
		t.Errorf("no finding conditions on %s:\n%s", gt.DistinguishingAttr, out)
	}
	// focus after drill works off the kept root comparison.
	if strings.Contains(out, "focus requires a comparison view") {
		t.Error("focus did not see the drill view's root comparison")
	}

	buf.Reset()
	if err := e.RunScript("drill onlyone\ndrill a b c d notanumber", &buf); err != nil {
		t.Fatal(err)
	}
	if c := strings.Count(buf.String(), "usage: drill"); c != 2 {
		t.Errorf("malformed drill commands printed %d usage errors, want 2:\n%s", c, buf.String())
	}
}
