package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// TestZTable verifies Table I of the paper exactly.
func TestZTable(t *testing.T) {
	cases := []struct {
		level ConfidenceLevel
		want  float64
	}{
		{Level90, 1.645},
		{Level95, 1.960},
		{Level99, 2.576},
	}
	for _, c := range cases {
		got, err := ZValue(c.level)
		if err != nil {
			t.Fatalf("ZValue(%v): %v", c.level, err)
		}
		if got != c.want {
			t.Errorf("ZValue(%v) = %v, want %v (Table I)", c.level, got, c.want)
		}
	}
}

func TestZValueComputedLevels(t *testing.T) {
	// A level not in Table I falls back to the inverse normal CDF and
	// must be close to the textbook value.
	got, err := ZValue(0.80)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.2816) > 1e-3 {
		t.Errorf("ZValue(0.80) = %v, want ≈1.2816", got)
	}
}

func TestZValueRejectsBadLevels(t *testing.T) {
	for _, level := range []ConfidenceLevel{0, 1, -0.5, 1.5} {
		if _, err := ZValue(level); err == nil {
			t.Errorf("ZValue(%v) should fail", level)
		}
	}
}

func TestMustZValuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustZValue(2) should panic")
		}
	}()
	MustZValue(2)
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.975, 0.999} {
		z := NormalQuantile(p)
		back := NormalCDF(z)
		if math.Abs(back-p) > 1e-6 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, back)
		}
	}
}

func TestNormalQuantileExtremes(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Error("Quantile(0) should be -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Error("Quantile(1) should be +Inf")
	}
	if NormalQuantile(0.5) != 0 {
		t.Errorf("Quantile(0.5) = %v, want 0", NormalQuantile(0.5))
	}
}

func TestProportionCIMatchesPaperFormula(t *testing.T) {
	// e = z·sqrt(cf(1−cf)/N) with z = 1.96.
	ci, err := ProportionCI(20, 200, Level95)
	if err != nil {
		t.Fatal(err)
	}
	cf := 0.1
	want := 1.96 * math.Sqrt(cf*(1-cf)/200)
	if math.Abs(ci.Margin-want) > 1e-12 {
		t.Errorf("margin = %v, want %v", ci.Margin, want)
	}
	if ci.Proportion != cf {
		t.Errorf("proportion = %v, want %v", ci.Proportion, cf)
	}
	if ci.Lower != cf-want || ci.Upper != cf+want {
		t.Errorf("bounds [%v,%v], want [%v,%v]", ci.Lower, ci.Upper, cf-want, cf+want)
	}
}

func TestProportionCIZeroN(t *testing.T) {
	ci, err := ProportionCI(0, 0, Level95)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Margin != 0.5 {
		t.Errorf("zero-N margin = %v, want 0.5 (maximal uncertainty)", ci.Margin)
	}
}

func TestProportionCIClampsToUnit(t *testing.T) {
	ci, err := ProportionCI(1, 2, Level99)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lower < 0 || ci.Upper > 1 {
		t.Errorf("interval [%v,%v] escapes [0,1]", ci.Lower, ci.Upper)
	}
}

func TestProportionCIRejectsInvalid(t *testing.T) {
	for _, c := range []struct{ s, n int64 }{{-1, 10}, {11, 10}, {5, -1}} {
		if _, err := ProportionCI(c.s, c.n, Level95); err == nil {
			t.Errorf("ProportionCI(%d,%d) should fail", c.s, c.n)
		}
	}
}

func TestWilsonCIProperties(t *testing.T) {
	// Wilson never leaves [0,1] even at extremes, and contains the
	// point estimate... (the Wilson center is shrunk toward 0.5, but the
	// interval still covers p for reasonable N).
	for _, c := range []struct{ s, n int64 }{{0, 10}, {10, 10}, {1, 3}, {50, 100}} {
		ci, err := WilsonCI(c.s, c.n, Level95)
		if err != nil {
			t.Fatal(err)
		}
		if ci.Lower < 0 || ci.Upper > 1 {
			t.Errorf("Wilson(%d/%d) = [%v,%v] escapes [0,1]", c.s, c.n, ci.Lower, ci.Upper)
		}
		p := float64(c.s) / float64(c.n)
		if p < ci.Lower-1e-9 || p > ci.Upper+1e-9 {
			t.Errorf("Wilson(%d/%d) = [%v,%v] does not contain %v", c.s, c.n, ci.Lower, ci.Upper, p)
		}
	}
}

// Property: the Wald margin shrinks as N grows, at fixed proportion.
func TestProportionCIMonotoneInN(t *testing.T) {
	f := func(seed uint8) bool {
		n1 := int64(seed) + 10
		n2 := n1 * 4
		ci1, err1 := ProportionCI(n1/2, n1, Level95)
		ci2, err2 := ProportionCI(n2/2, n2, Level95)
		if err1 != nil || err2 != nil {
			return false
		}
		return ci2.Margin < ci1.Margin
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChiSquareIndependence(t *testing.T) {
	// Perfectly proportional table → statistic 0.
	chi2, df, err := ChiSquare([][]int64{{10, 20}, {30, 60}})
	if err != nil {
		t.Fatal(err)
	}
	if chi2 != 0 {
		t.Errorf("chi2 = %v, want 0 for proportional table", chi2)
	}
	if df != 1 {
		t.Errorf("df = %d, want 1", df)
	}
}

func TestChiSquareKnownValue(t *testing.T) {
	// 2×2 with strong association. Hand computation:
	// [[50,10],[10,50]], N=120, expected all 30 off by 20 → chi2 = 4·400/30 ≈ 53.33.
	chi2, df, err := ChiSquare([][]int64{{50, 10}, {10, 50}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(chi2-53.3333) > 1e-3 {
		t.Errorf("chi2 = %v, want ≈53.333", chi2)
	}
	if df != 1 {
		t.Errorf("df = %d", df)
	}
	if p := ChiSquarePValue(chi2, df); p > 1e-6 {
		t.Errorf("p = %v, want ≈0 for chi2=53", p)
	}
}

func TestChiSquareIgnoresEmptyRows(t *testing.T) {
	chi2a, dfa, err := ChiSquare([][]int64{{50, 10}, {0, 0}, {10, 50}})
	if err != nil {
		t.Fatal(err)
	}
	chi2b, dfb, err := ChiSquare([][]int64{{50, 10}, {10, 50}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(chi2a-chi2b) > 1e-9 || dfa != dfb {
		t.Errorf("empty row changed result: (%v,%d) vs (%v,%d)", chi2a, dfa, chi2b, dfb)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, _, err := ChiSquare(nil); err == nil {
		t.Error("empty table should fail")
	}
	if _, _, err := ChiSquare([][]int64{{1, 2}, {3}}); err == nil {
		t.Error("ragged table should fail")
	}
	if _, _, err := ChiSquare([][]int64{{1, -2}}); err == nil {
		t.Error("negative count should fail")
	}
	if _, _, err := ChiSquare([][]int64{{0, 0}}); err == nil {
		t.Error("zero-total table should fail")
	}
}

func TestChiSquarePValueEdges(t *testing.T) {
	if p := ChiSquarePValue(10, 0); p != 1 {
		t.Errorf("df=0 p = %v, want 1", p)
	}
	if p := ChiSquarePValue(0, 3); p != 1 {
		t.Errorf("stat=0 p = %v, want 1", p)
	}
	if p := ChiSquarePValue(3.84, 1); math.Abs(p-0.05) > 0.01 {
		t.Errorf("chi2=3.84 df=1 p = %v, want ≈0.05", p)
	}
}

func TestEntropy(t *testing.T) {
	if h := Entropy([]int64{50, 50}); math.Abs(h-1) > 1e-12 {
		t.Errorf("uniform binary entropy = %v, want 1", h)
	}
	if h := Entropy([]int64{100, 0}); h != 0 {
		t.Errorf("pure entropy = %v, want 0", h)
	}
	if h := Entropy(nil); h != 0 {
		t.Errorf("empty entropy = %v, want 0", h)
	}
	if h := Entropy([]int64{1, 1, 1, 1}); math.Abs(h-2) > 1e-12 {
		t.Errorf("uniform 4-way entropy = %v, want 2", h)
	}
}

// Property: entropy is maximized by the uniform distribution.
func TestEntropyMaxAtUniform(t *testing.T) {
	f := func(a, b, c uint16) bool {
		counts := []int64{int64(a) + 1, int64(b) + 1, int64(c) + 1}
		return Entropy(counts) <= math.Log2(3)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEntropyFloatAgreesWithInt(t *testing.T) {
	got := EntropyFloat([]float64{3, 5, 8})
	want := Entropy([]int64{3, 5, 8})
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("EntropyFloat = %v, Entropy = %v", got, want)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %v, want 5", m)
	}
	if sd := StdDev(xs); math.Abs(sd-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", sd)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty mean/stddev should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Errorf("q25 = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Input must not be reordered.
	if xs[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}
