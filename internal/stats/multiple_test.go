package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAdjustBHKnownExample(t *testing.T) {
	// Classic worked example: p = .01, .02, .03, .04, .05 with n = 5.
	// q_i = p_i * n / rank, then monotone from the top:
	// .05, .05, .05, .05, .05.
	p := []float64{0.01, 0.02, 0.03, 0.04, 0.05}
	q := AdjustBH(p)
	for i, want := range []float64{0.05, 0.05, 0.05, 0.05, 0.05} {
		if math.Abs(q[i]-want) > 1e-12 {
			t.Errorf("q[%d] = %v, want %v", i, q[i], want)
		}
	}
}

func TestAdjustBHOrderPreserved(t *testing.T) {
	// Results come back in input order, not sorted order.
	p := []float64{0.04, 0.001, 0.5}
	q := AdjustBH(p)
	if len(q) != 3 {
		t.Fatal("length changed")
	}
	// The smallest p keeps the smallest q.
	if !(q[1] <= q[0] && q[0] <= q[2]) {
		t.Errorf("q ordering broken: %v", q)
	}
	// Check exact values: sorted p = .001,.04,.5 →
	// raw q = .001*3/1=.003, .04*3/2=.06, .5*3/3=.5; already monotone.
	if math.Abs(q[1]-0.003) > 1e-12 || math.Abs(q[0]-0.06) > 1e-12 || math.Abs(q[2]-0.5) > 1e-12 {
		t.Errorf("q = %v", q)
	}
}

func TestAdjustBHEdges(t *testing.T) {
	if AdjustBH(nil) != nil {
		t.Error("nil input should yield nil")
	}
	q := AdjustBH([]float64{0.2})
	if q[0] != 0.2 {
		t.Errorf("single p unchanged, got %v", q[0])
	}
	// Clamping.
	q = AdjustBH([]float64{-0.5, 2})
	if q[0] < 0 || q[1] > 1 {
		t.Errorf("clamping broken: %v", q)
	}
}

// Properties: q ≥ p, q ∈ [0,1], and q is monotone in p.
func TestAdjustBHProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		p := make([]float64, len(raw))
		for i, r := range raw {
			p[i] = math.Abs(math.Mod(r, 1))
		}
		q := AdjustBH(p)
		for i := range p {
			if q[i] < p[i]-1e-12 || q[i] < 0 || q[i] > 1 {
				return false
			}
		}
		// Monotone: smaller p never gets a larger q.
		for i := range p {
			for j := range p {
				if p[i] < p[j] && q[i] > q[j]+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAdjustBonferroni(t *testing.T) {
	q := AdjustBonferroni([]float64{0.01, 0.4, 0.9})
	want := []float64{0.03, 1, 1}
	for i := range want {
		if math.Abs(q[i]-want[i]) > 1e-12 {
			t.Errorf("q[%d] = %v, want %v", i, q[i], want[i])
		}
	}
	if len(AdjustBonferroni(nil)) != 0 {
		t.Error("nil handling broken")
	}
	// Bonferroni dominates BH.
	p := []float64{0.01, 0.02, 0.3}
	bh := AdjustBH(p)
	bf := AdjustBonferroni(p)
	for i := range p {
		if bf[i] < bh[i]-1e-12 {
			t.Errorf("Bonferroni %v below BH %v at %d", bf[i], bh[i], i)
		}
	}
}
