// Package stats provides the small statistical toolkit the Opportunity
// Map system depends on: normal-approximation confidence intervals for
// population proportions (Section IV.B of the paper, including the z
// table reproduced as Table I), chi-square statistics for contingency
// tables, and entropy helpers used by the entropy-MDLP discretizer and
// the influential-attribute miner.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// ConfidenceLevel identifies a two-sided statistical confidence level for
// which a z value is tabulated (Table I of the paper).
type ConfidenceLevel float64

// The confidence levels tabulated by the paper (Table I).
const (
	Level90 ConfidenceLevel = 0.90
	Level95 ConfidenceLevel = 0.95
	Level99 ConfidenceLevel = 0.99
)

// zTable reproduces Table I of the paper: z values for the standard
// confidence levels. The paper uses 0.95 (z = 1.96) throughout.
var zTable = map[ConfidenceLevel]float64{
	Level90: 1.645,
	Level95: 1.960,
	Level99: 2.576,
}

// ZValue returns the z constant for the given confidence level. Levels
// not present in Table I are computed from the inverse normal CDF, so
// any level in (0, 1) is accepted.
func ZValue(level ConfidenceLevel) (float64, error) {
	if z, ok := zTable[level]; ok {
		return z, nil
	}
	if level <= 0 || level >= 1 {
		return 0, fmt.Errorf("stats: confidence level %v out of range (0,1)", float64(level))
	}
	// Two-sided: z such that P(-z < Z < z) = level.
	return NormalQuantile(0.5 + float64(level)/2), nil
}

// MustZValue is ZValue for levels known to be valid; it panics otherwise.
// It is convenient for the tabulated constants.
func MustZValue(level ConfidenceLevel) float64 {
	z, err := ZValue(level)
	if err != nil {
		panic(err)
	}
	return z
}

// NormalQuantile returns the quantile function (inverse CDF) of the
// standard normal distribution evaluated at p in (0, 1). It uses the
// Acklam rational approximation, accurate to about 1.15e-9, which is far
// tighter than the 3-digit Table I values.
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the Acklam approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}

	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// NormalCDF returns the cumulative distribution function of the standard
// normal distribution.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// ProportionInterval is a two-sided confidence interval around an
// observed proportion.
type ProportionInterval struct {
	Proportion float64 // observed proportion cf
	Margin     float64 // half-width e; interval is cf ± e
	Lower      float64 // max(0, cf−e)
	Upper      float64 // min(1, cf+e)
	N          int64   // sample size the interval was computed from
}

// ProportionCI computes the normal-approximation (Wald) confidence
// interval for a population proportion, exactly as Section IV.B of the
// paper: e = z * sqrt(cf*(1-cf)/N). A zero sample size yields a
// degenerate interval with maximal margin 0.5 so that tiny populations
// are never treated as precisely measured.
func ProportionCI(successes, n int64, level ConfidenceLevel) (ProportionInterval, error) {
	if successes < 0 || n < 0 || successes > n {
		return ProportionInterval{}, fmt.Errorf("stats: invalid proportion %d/%d", successes, n)
	}
	z, err := ZValue(level)
	if err != nil {
		return ProportionInterval{}, err
	}
	if n == 0 {
		return ProportionInterval{Proportion: 0, Margin: 0.5, Lower: 0, Upper: 0.5, N: 0}, nil
	}
	cf := float64(successes) / float64(n)
	e := z * math.Sqrt(cf*(1-cf)/float64(n))
	return ProportionInterval{
		Proportion: cf,
		Margin:     e,
		Lower:      math.Max(0, cf-e),
		Upper:      math.Min(1, cf+e),
		N:          n,
	}, nil
}

// WilsonCI computes the Wilson score interval for a proportion. The
// paper uses the Wald interval; Wilson is provided because it behaves
// sensibly for extreme proportions and small N, and the comparator can
// be configured to use it as an extension.
func WilsonCI(successes, n int64, level ConfidenceLevel) (ProportionInterval, error) {
	if successes < 0 || n < 0 || successes > n {
		return ProportionInterval{}, fmt.Errorf("stats: invalid proportion %d/%d", successes, n)
	}
	z, err := ZValue(level)
	if err != nil {
		return ProportionInterval{}, err
	}
	if n == 0 {
		return ProportionInterval{Proportion: 0, Margin: 0.5, Lower: 0, Upper: 0.5, N: 0}, nil
	}
	nf := float64(n)
	p := float64(successes) / nf
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf)) / denom
	return ProportionInterval{
		Proportion: p,
		Margin:     half,
		Lower:      math.Max(0, center-half),
		Upper:      math.Min(1, center+half),
		N:          n,
	}, nil
}

// ChiSquare computes Pearson's chi-square statistic for an r×c
// contingency table of observed counts, together with its degrees of
// freedom. Rows or columns whose marginal total is zero are ignored (they
// contribute nothing and would otherwise divide by zero).
func ChiSquare(observed [][]int64) (statistic float64, df int, err error) {
	r := len(observed)
	if r == 0 {
		return 0, 0, fmt.Errorf("stats: empty contingency table")
	}
	c := len(observed[0])
	rowTot := make([]float64, r)
	colTot := make([]float64, c)
	var grand float64
	for i, row := range observed {
		if len(row) != c {
			return 0, 0, fmt.Errorf("stats: ragged contingency table (row %d has %d cols, want %d)", i, len(row), c)
		}
		for j, v := range row {
			if v < 0 {
				return 0, 0, fmt.Errorf("stats: negative count %d at (%d,%d)", v, i, j)
			}
			rowTot[i] += float64(v)
			colTot[j] += float64(v)
			grand += float64(v)
		}
	}
	if IsZero(grand) {
		return 0, 0, fmt.Errorf("stats: contingency table has zero total")
	}
	liveRows, liveCols := 0, 0
	for _, t := range rowTot {
		if t > 0 {
			liveRows++
		}
	}
	for _, t := range colTot {
		if t > 0 {
			liveCols++
		}
	}
	var chi2 float64
	for i := 0; i < r; i++ {
		if IsZero(rowTot[i]) {
			continue
		}
		for j := 0; j < c; j++ {
			if IsZero(colTot[j]) {
				continue
			}
			expected := rowTot[i] * colTot[j] / grand
			d := float64(observed[i][j]) - expected
			chi2 += d * d / expected
		}
	}
	df = (liveRows - 1) * (liveCols - 1)
	if df < 0 {
		df = 0
	}
	return chi2, df, nil
}

// ChiSquarePValue returns an upper-tail p-value for a chi-square
// statistic with df degrees of freedom, using the Wilson–Hilferty normal
// approximation. It is adequate for ranking and significance screening.
func ChiSquarePValue(statistic float64, df int) float64 {
	if df <= 0 {
		return 1
	}
	if statistic <= 0 {
		return 1
	}
	k := float64(df)
	// Wilson–Hilferty: (X/k)^(1/3) approx Normal(1-2/(9k), 2/(9k)).
	z := (math.Cbrt(statistic/k) - (1 - 2/(9*k))) / math.Sqrt(2/(9*k))
	return 1 - NormalCDF(z)
}

// Entropy returns the Shannon entropy (in bits) of a discrete
// distribution given by counts. Zero counts contribute nothing; a zero
// total has entropy zero.
func Entropy(counts []int64) float64 {
	var total float64
	for _, c := range counts {
		total += float64(c)
	}
	if IsZero(total) {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / total
		h -= p * math.Log2(p)
	}
	return h
}

// EntropyFloat is Entropy over float64 weights.
func EntropyFloat(weights []float64) float64 {
	var total float64
	for _, w := range weights {
		total += w
	}
	if IsZero(total) {
		return 0
	}
	var h float64
	for _, w := range weights {
		if w <= 0 {
			continue
		}
		p := w / total
		h -= p * math.Log2(p)
	}
	return h
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
