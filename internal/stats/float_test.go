package stats

import (
	"math"
	"testing"
)

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{1, 1 + 1e-12, true},             // within absolute tolerance
		{1e12, 1e12 * (1 + 1e-12), true}, // within relative tolerance
		{1, 1 + 1e-6, false},             // outside both tolerances
		{1e12, 1e12 * (1 + 1e-6), false}, // relative difference too large
		{0, 1e-12, true},                 // near zero: absolute tolerance
		{0, 1e-6, false},                 //
		{math.Inf(1), math.Inf(1), true}, // fast path handles infinities
		{math.Inf(1), math.Inf(-1), false},
		{math.NaN(), math.NaN(), false}, // NaN never approximately equals
		{math.NaN(), 1, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b); got != c.want {
			t.Errorf("ApproxEqual(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := ApproxEqual(c.b, c.a); got != c.want {
			t.Errorf("ApproxEqual(%v, %v) = %v, want %v (not symmetric)", c.b, c.a, got, c.want)
		}
	}
}

func TestApproxEqualTol(t *testing.T) {
	if !ApproxEqualTol(100, 101, 0.02) {
		t.Error("ApproxEqualTol(100, 101, 0.02) = false; relative tolerance should admit 1%")
	}
	if ApproxEqualTol(100, 103, 0.02) {
		t.Error("ApproxEqualTol(100, 103, 0.02) = true; 3% exceeds tolerance")
	}
	if !ApproxEqualTol(5, 5, 0) {
		t.Error("ApproxEqualTol(5, 5, 0) = false; identical values must pass at zero tolerance")
	}
}

func TestIsZero(t *testing.T) {
	if !IsZero(0) {
		t.Error("IsZero(0) = false")
	}
	if !IsZero(math.Copysign(0, -1)) {
		t.Error("IsZero(-0) = false; negative zero is zero")
	}
	if IsZero(1e-300) {
		t.Error("IsZero(1e-300) = true; IsZero is exact, not approximate")
	}
	if IsZero(math.NaN()) {
		t.Error("IsZero(NaN) = true")
	}
}

func TestSameValue(t *testing.T) {
	if !SameValue(1.5, 1.5) {
		t.Error("SameValue(1.5, 1.5) = false")
	}
	if SameValue(1.5, 1.5+1e-12) {
		t.Error("SameValue admits approximately equal values; it must be exact identity")
	}
	if SameValue(math.NaN(), math.NaN()) {
		t.Error("SameValue(NaN, NaN) = true; IEEE semantics apply")
	}
}
