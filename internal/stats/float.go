package stats

import "math"

// This file holds the project's blessed floating-point comparison
// helpers. The floatcmp analyzer (internal/lint) rejects raw == / !=
// between floats everywhere in the module; the three legitimate needs
// funnel through here so each exact comparison is named, documented
// and grep-able:
//
//   - ApproxEqual / ApproxEqualTol: tolerance comparison for computed
//     quantities (confidences, F/W/M scores, entropies).
//   - IsZero: exact zero test for unset-option sentinels and for
//     accumulators derived from integer counts, where zero is exact.
//   - SameValue: exact identity for deduplicating values drawn from
//     the same data column (cut points, sorted keys), where a
//     tolerance would silently merge distinct observations.

// DefaultTol is the tolerance ApproxEqual uses: comfortably above
// accumulated rounding error in the comparator's sums over millions of
// records, far below any meaningful confidence difference.
const DefaultTol = 1e-9

// ApproxEqual reports whether a and b are equal within DefaultTol,
// combining absolute tolerance (for values near zero) with relative
// tolerance (for large magnitudes).
func ApproxEqual(a, b float64) bool {
	return ApproxEqualTol(a, b, DefaultTol)
}

// ApproxEqualTol is ApproxEqual with an explicit tolerance. NaN equals
// nothing; equal infinities are equal, unequal ones never are (without
// the explicit check, |Inf−(−Inf)| ≤ tol·Inf would hold).
func ApproxEqualTol(a, b, tol float64) bool {
	if a == b { // fast path; also the only way infinities compare equal
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// IsZero reports whether x is exactly zero. Use it for zero-value
// option sentinels ("0 means default") and for float accumulators
// built from integer counts, where exact zero is well-defined; use
// ApproxEqual for computed quantities.
func IsZero(x float64) bool {
	return x == 0
}

// SameValue reports whether a and b are exactly the same value (with
// -0 equal to +0 and NaN equal to nothing, i.e. plain float equality).
// Use it to deduplicate or match values that originate from the same
// data column; a tolerance there would merge genuinely distinct
// observations.
func SameValue(a, b float64) bool {
	return a == b
}
