package stats

import "sort"

// Multiple-testing corrections. Screening all value pairs of an
// attribute (or all attributes of a comparison) performs many hypothesis
// tests at once; raw p-values then overstate significance. The
// Benjamini–Hochberg procedure controls the false discovery rate and is
// the standard correction for exploratory mining output.

// AdjustBH returns the Benjamini–Hochberg adjusted p-values (q-values)
// for the given p-values, in the same order as the input. Each q-value
// is the smallest FDR at which the corresponding hypothesis would be
// rejected. Inputs outside [0,1] are clamped.
func AdjustBH(pvalues []float64) []float64 {
	n := len(pvalues)
	if n == 0 {
		return nil
	}
	type item struct {
		p   float64
		idx int
	}
	items := make([]item, n)
	for i, p := range pvalues {
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		items[i] = item{p, i}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].p < items[j].p })

	out := make([]float64, n)
	// Walk from the largest p downward, enforcing monotonicity.
	minSoFar := 1.0
	for rank := n - 1; rank >= 0; rank-- {
		q := items[rank].p * float64(n) / float64(rank+1)
		if q < minSoFar {
			minSoFar = q
		}
		if minSoFar > 1 {
			minSoFar = 1
		}
		out[items[rank].idx] = minSoFar
	}
	return out
}

// AdjustBonferroni returns Bonferroni-adjusted p-values: min(1, p·n).
// More conservative than BH; appropriate when any single false positive
// is costly.
func AdjustBonferroni(pvalues []float64) []float64 {
	n := float64(len(pvalues))
	out := make([]float64, len(pvalues))
	for i, p := range pvalues {
		q := p * n
		if q > 1 {
			q = 1
		}
		if q < 0 {
			q = 0
		}
		out[i] = q
	}
	return out
}
