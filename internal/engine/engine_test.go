package engine_test

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"opmap/internal/compare"
	"opmap/internal/dataset"
	"opmap/internal/drill"
	"opmap/internal/engine"
	"opmap/internal/obsv"
	"opmap/internal/rulecube"
	"opmap/internal/testutil"
	"opmap/internal/workload"
)

// oracle builds one planted call-log dataset with both engines over it,
// so every test can assert lazy ≡ eager.
func oracle(t testing.TB) (*dataset.Dataset, workload.GroundTruth, *engine.Eager, *engine.LazySource) {
	t.Helper()
	ds, gt, err := workload.CallLog(workload.CallLogConfig{Seed: 42, Records: 8000, NumPhones: 6, NoiseAttrs: 4})
	if err != nil {
		t.Fatal(err)
	}
	store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := engine.NewLazy(ds, engine.LazyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return ds, gt, engine.NewEager(store), lazy
}

func compareInput(t testing.TB, ds *dataset.Dataset, gt workload.GroundTruth) compare.Input {
	t.Helper()
	attr := ds.AttrIndex(gt.PhoneAttr)
	v1, ok1 := ds.Column(attr).Dict.Lookup(gt.GoodPhone)
	v2, ok2 := ds.Column(attr).Dict.Lookup(gt.BadPhone)
	cls, ok3 := ds.ClassDict().Lookup(gt.DropClass)
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("ground truth labels missing from dataset")
	}
	return compare.Input{Attr: attr, V1: v1, V2: v2, Class: cls}
}

// TestOracleCompareAndSweep is the acceptance oracle: the lazy engine
// must return results identical to the eager store for the paper's two
// fan-out queries.
func TestOracleCompareAndSweep(t *testing.T) {
	ds, gt, eager, lazy := oracle(t)
	ctx := context.Background()
	in := compareInput(t, ds, gt)

	eagerRes, err := compare.NewSource(eager).CompareContext(ctx, in, compare.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lazyRes, err := compare.NewSource(lazy).CompareContext(ctx, in, compare.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(eagerRes, lazyRes) {
		t.Errorf("lazy Compare result differs from eager:\neager: %+v\nlazy:  %+v", eagerRes, lazyRes)
	}

	cls, _ := ds.ClassDict().Lookup(gt.DropClass)
	attr := ds.AttrIndex(gt.PhoneAttr)
	eagerSweep, err := compare.NewSource(eager).SweepContext(ctx, attr, cls, compare.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lazySweep, err := compare.NewSource(lazy).SweepContext(ctx, attr, cls, compare.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(eagerSweep, lazySweep) {
		t.Errorf("lazy Sweep result differs from eager:\neager: %+v\nlazy:  %+v", eagerSweep, lazySweep)
	}
}

// TestOracleCubeOps runs the OLAP operators over cubes served by both
// engines: same pair, same rollup/slice/dice cells.
func TestOracleCubeOps(t *testing.T) {
	ds, _, eager, lazy := oracle(t)
	ctx := context.Background()
	a, b := 0, 1
	if ds.ClassIndex() <= 1 {
		t.Fatal("test assumes the class is not attribute 0 or 1")
	}

	ec, err := eager.Cube2(ctx, a, b)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := lazy.Cube2(ctx, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ec, lc) {
		t.Fatal("lazy pair cube differs from eager")
	}

	for pos := 0; pos < 2; pos++ {
		er, err1 := ec.Rollup(pos)
		lr, err2 := lc.Rollup(pos)
		if err1 != nil || err2 != nil {
			t.Fatalf("rollup(%d): %v / %v", pos, err1, err2)
		}
		if !reflect.DeepEqual(er, lr) {
			t.Errorf("rollup(%d) differs between engines", pos)
		}
		for v := int32(0); int(v) < ec.Dim(pos); v++ {
			es, err1 := ec.Slice(pos, v)
			ls, err2 := lc.Slice(pos, v)
			if err1 != nil || err2 != nil {
				t.Fatalf("slice(%d,%d): %v / %v", pos, v, err1, err2)
			}
			if !reflect.DeepEqual(es, ls) {
				t.Errorf("slice(%d,%d) differs between engines", pos, v)
			}
		}
	}

	keep := []int32{0, 1}
	ed, err1 := ec.Dice(0, keep)
	ld, err2 := lc.Dice(0, keep)
	if err1 != nil || err2 != nil {
		t.Fatalf("dice: %v / %v", err1, err2)
	}
	if !reflect.DeepEqual(ed, ld) {
		t.Error("dice differs between engines")
	}
}

// TestOracleOneD asserts identical 1-D cubes and that both engines
// serve the same attribute set.
func TestOracleOneD(t *testing.T) {
	_, _, eager, lazy := oracle(t)
	ctx := context.Background()
	if !reflect.DeepEqual(eager.Attrs(), lazy.Attrs()) {
		t.Fatalf("attr sets differ: eager %v, lazy %v", eager.Attrs(), lazy.Attrs())
	}
	for _, a := range eager.Attrs() {
		ec, err := eager.Cube1(ctx, a)
		if err != nil {
			t.Fatal(err)
		}
		lc, err := lazy.Cube1(ctx, a)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ec, lc) {
			t.Errorf("1-D cube for attribute %d differs between engines", a)
		}
	}
}

// TestSingleflightOneBuildPerKey hammers first-touch of the same cubes
// from many goroutines under -race: every caller must get the same
// cube, and each key must be built exactly once.
func TestSingleflightOneBuildPerKey(t *testing.T) {
	defer testutil.VerifyNoLeak(t)()
	ds, _, _, lazy := oracle(t)
	if ds.ClassIndex() <= 2 {
		t.Fatal("test assumes attributes 0..2 are not the class")
	}
	ctx := context.Background()
	const workers = 16
	pairs := [][2]int{{0, 1}, {1, 2}, {0, 2}}

	var wg sync.WaitGroup
	cubes := make([][]*rulecube.Cube, len(pairs))
	for i := range cubes {
		cubes[i] = make([]*rulecube.Cube, workers)
	}
	oneD := make([]*rulecube.Cube, workers)
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i, p := range pairs {
				c, err := lazy.Cube2(ctx, p[0], p[1])
				if err != nil {
					t.Errorf("Cube2(%v): %v", p, err)
					return
				}
				cubes[i][w] = c
			}
			c, err := lazy.Cube1(ctx, 0)
			if err != nil {
				t.Errorf("Cube1(0): %v", err)
				return
			}
			oneD[w] = c
		}(w)
	}
	close(start)
	wg.Wait()

	for i := range pairs {
		for w := 1; w < workers; w++ {
			if cubes[i][w] != cubes[i][0] {
				t.Errorf("pair %v: worker %d got a different cube instance", pairs[i], w)
			}
		}
	}
	for w := 1; w < workers; w++ {
		if oneD[w] != oneD[0] {
			t.Errorf("Cube1: worker %d got a different cube instance", w)
		}
	}
	st := lazy.Stats()
	if st.TwoDBuilds != int64(len(pairs)) {
		t.Errorf("TwoDBuilds = %d, want exactly %d (singleflight)", st.TwoDBuilds, len(pairs))
	}
	if st.OneDBuilds != 1 {
		t.Errorf("OneDBuilds = %d, want exactly 1", st.OneDBuilds)
	}
	if st.Hits+st.Misses != int64(len(pairs)*workers) {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, len(pairs)*workers)
	}
}

// TestLRUEviction forces the 2-D cache over budget and checks the
// accounting plus that an evicted cube rebuilds correctly.
func TestLRUEviction(t *testing.T) {
	ds, _, eager, _ := oracle(t)
	ctx := context.Background()
	// Budget for roughly one pair cube: the second distinct pair must
	// evict the first.
	probe, err := eager.Cube2(ctx, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := engine.NewLazy(ds, engine.LazyOptions{CacheBytes: probe.SizeBytes() + 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lazy.Cube2(ctx, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := lazy.Cube2(ctx, 0, 2); err != nil {
		t.Fatal(err)
	}
	st := lazy.Stats()
	if st.Evictions == 0 {
		t.Fatal("expected at least one eviction with a one-cube budget")
	}
	if st.CachedBytes > probe.SizeBytes()+1 {
		t.Errorf("CachedBytes %d exceeds budget %d", st.CachedBytes, probe.SizeBytes()+1)
	}
	// The evicted pair must rebuild and still match the eager cube.
	again, err := lazy.Cube2(ctx, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, probe) {
		t.Error("rebuilt cube after eviction differs from eager")
	}
	if got := lazy.Stats().TwoDBuilds; got < 3 {
		t.Errorf("TwoDBuilds = %d, want >= 3 (rebuild after eviction)", got)
	}
}

// TestLazyErrors covers the contract edges: unknown attributes, the
// class attribute, identical pairs, and pre-canceled contexts.
func TestLazyErrors(t *testing.T) {
	defer testutil.VerifyNoLeak(t)()
	ds, _, _, lazy := oracle(t)
	ctx := context.Background()
	if _, err := lazy.Cube1(ctx, ds.ClassIndex()); err == nil {
		t.Error("Cube1(class) should fail")
	}
	if _, err := lazy.Cube1(ctx, ds.NumAttrs()+3); err == nil {
		t.Error("Cube1(out of range) should fail")
	}
	if _, err := lazy.Cube2(ctx, 1, 1); err == nil {
		t.Error("Cube2(a,a) should fail")
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := lazy.Cube2(canceled, 0, 1); err == nil {
		t.Error("Cube2 under a canceled context should fail")
	}
	// The failed build must not be cached: a fresh context succeeds.
	if _, err := lazy.Cube2(ctx, 0, 1); err != nil {
		t.Errorf("retry after canceled build failed: %v", err)
	}
}

// TestCube2PairOrder checks both engines normalize (b,a) to (a,b).
func TestCube2PairOrder(t *testing.T) {
	_, _, eager, lazy := oracle(t)
	ctx := context.Background()
	for _, src := range []engine.CubeSource{eager, lazy} {
		fwd, err := src.Cube2(ctx, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		rev, err := src.Cube2(ctx, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if fwd != rev {
			t.Errorf("%T: Cube2(0,1) and Cube2(1,0) returned different cubes", src)
		}
	}
}

// TestResultCache covers versioned lookup, LRU bounding and
// invalidation.
func TestResultCache(t *testing.T) {
	rc := engine.NewResultCache(2)
	v := rc.Version()
	if _, ok := rc.Get(v, "a"); ok {
		t.Fatal("empty cache hit")
	}
	rc.Put(v, "a", 1)
	rc.Put(v, "b", 2)
	if got, ok := rc.Get(v, "a"); !ok || got.(int) != 1 {
		t.Fatalf("Get(a) = %v, %t", got, ok)
	}
	// "b" is now LRU; inserting "c" evicts it.
	rc.Put(v, "c", 3)
	if _, ok := rc.Get(v, "b"); ok {
		t.Error("b should have been evicted at max=2")
	}
	if rc.Len() != 2 {
		t.Errorf("Len = %d, want 2", rc.Len())
	}
	// Stale-version writes are dropped; stale reads miss.
	rc.Put(v-1, "stale", 9)
	if _, ok := rc.Get(v, "stale"); ok {
		t.Error("stale-version Put must be dropped")
	}
	if _, ok := rc.Get(v-1, "a"); ok {
		t.Error("stale-version Get must miss")
	}
	rc.Invalidate()
	if rc.Version() == v {
		t.Error("Invalidate must bump the version")
	}
	if rc.Len() != 0 {
		t.Errorf("Len after Invalidate = %d, want 0", rc.Len())
	}
	if _, ok := rc.Get(rc.Version(), "a"); ok {
		t.Error("entries must be cleared on Invalidate")
	}
}

// TestResultCacheEpochInvalidation: BumpAttrs removes exactly the
// entries whose dependency sets intersect the touched attributes —
// plus depends-on-all entries — and leaves the rest servable under
// the unchanged version.
func TestResultCacheEpochInvalidation(t *testing.T) {
	rc := engine.NewResultCache(0)
	v := rc.Version()
	rc.PutDeps(v, "attr1only", "a", []int{1})
	rc.PutDeps(v, "attr2and3", "b", []int{2, 3})
	rc.Put(v, "all", "c") // nil deps: depends on every attribute

	if n := rc.BumpAttrs([]int{3}); n != 2 {
		t.Errorf("BumpAttrs(3) removed %d entries, want 2 (attr2and3 + all)", n)
	}
	if _, ok := rc.Get(v, "attr1only"); !ok {
		t.Error("entry depending only on attr 1 must survive a bump of attr 3")
	}
	if _, ok := rc.Get(v, "attr2and3"); ok {
		t.Error("entry depending on attr 3 must be invalidated")
	}
	if _, ok := rc.Get(v, "all"); ok {
		t.Error("depends-on-all entry must be invalidated by any bump")
	}
	if rc.Version() != v {
		t.Error("BumpAttrs must not change the cache version")
	}
	if got := rc.AttrEpoch(3); got != 1 {
		t.Errorf("AttrEpoch(3) = %d, want 1", got)
	}
	if got := rc.AttrEpoch(1); got != 0 {
		t.Errorf("AttrEpoch(1) = %d, want 0", got)
	}
	if st := rc.Stats(); st.Invalidations != 2 {
		t.Errorf("Stats.Invalidations = %d, want 2", st.Invalidations)
	}
	// A bump touching nothing resident removes nothing.
	if n := rc.BumpAttrs([]int{9}); n != 0 {
		t.Errorf("BumpAttrs(9) removed %d entries, want 0", n)
	}
}

// TestLazyAttrSubset restricts the servable attributes and checks the
// boundary.
func TestLazyAttrSubset(t *testing.T) {
	ds, _, _, _ := oracle(t)
	lazy, err := engine.NewLazy(ds, engine.LazyOptions{Attrs: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := lazy.Cube2(ctx, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := lazy.Cube2(ctx, 0, 2); err == nil {
		t.Error("pair outside the attr subset should fail")
	}
	if _, err := lazy.Cube1(ctx, 2); err == nil {
		t.Error("attribute outside the subset should fail")
	}
	if _, err := engine.NewLazy(ds, engine.LazyOptions{Attrs: []int{ds.ClassIndex()}}); err == nil {
		t.Error("class in the attr list should fail")
	}
	if _, err := engine.NewLazy(ds, engine.LazyOptions{Attrs: []int{0, 0}}); err == nil {
		t.Error("duplicate attrs should fail")
	}
}

// TestConcurrentMixedWorkload drives compares and sweeps through the
// lazy engine from several goroutines under -race, with a small budget
// so evictions interleave with builds.
func TestConcurrentMixedWorkload(t *testing.T) {
	defer testutil.VerifyNoLeak(t)()
	ds, gt, eager, _ := oracle(t)
	lazy, err := engine.NewLazy(ds, engine.LazyOptions{CacheBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	in := compareInput(t, ds, gt)
	want, err := compare.NewSource(eager).CompareContext(ctx, in, compare.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				got, err := compare.NewSource(lazy).CompareContext(ctx, in, compare.Options{})
				if err != nil {
					t.Errorf("compare: %v", err)
					return
				}
				if !reflect.DeepEqual(got, want) {
					t.Error("concurrent lazy compare diverged from eager")
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := lazy.Stats(); st.Evictions == 0 {
		t.Logf("note: no evictions at budget 4096 (bytes=%d)", st.CachedBytes)
	}
}

// TestPreRegisterComplete pins the pre-registered metric surface — the
// server calls PreRegister at startup, and ci greps these exact
// strings from a fresh daemon's first scrape.
func TestPreRegisterComplete(t *testing.T) {
	reg := obsv.NewRegistry()
	engine.PreRegister(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	scrape := buf.String()
	for _, name := range []string{
		engine.CubeCacheHitsCounterName,
		engine.CubeCacheMissesCounterName,
		engine.CubeCacheEvictionsCounterName,
		engine.ResultCacheHitsCounterName,
		engine.ResultCacheMissesCounterName,
		engine.CubeCacheBytesGaugeName,
		engine.LazyBuildHistogramName,
	} {
		if name == "" {
			t.Fatal("empty metric name constant")
		}
		if !strings.Contains(scrape, name) {
			t.Errorf("metric %q absent from a pre-registered scrape", name)
		}
	}
}

// BenchmarkLazyWarmCube2 measures the warm LRU hit path.
func BenchmarkLazyWarmCube2(b *testing.B) {
	ds, _, _, _ := oracle(b)
	lazy, err := engine.NewLazy(ds, engine.LazyOptions{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := lazy.Cube2(ctx, 0, 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lazy.Cube2(ctx, 0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// TestNDCacheBudget drives a full drill-down through a lazy source
// whose budget fits roughly one 3-D cube, and checks the k >= 3 path
// honors the shared byte budget: cached bytes never exceed it,
// evictions actually happen, and an evicted n-D cube rebuilds
// identically on re-request (in any attribute order).
func TestNDCacheBudget(t *testing.T) {
	defer testutil.VerifyNoLeak(t)()
	ds, gt, eager, _ := oracle(t)
	ctx := context.Background()

	probe, err := eager.CubeN(ctx, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	budget := probe.SizeBytes() + 1
	lazy, err := engine.NewLazy(ds, engine.LazyOptions{CacheBytes: budget})
	if err != nil {
		t.Fatal(err)
	}

	// A depth-2 drill expands frontier nodes with 3-attribute cube
	// batches, far more bytes than the budget admits at once.
	res, err := drill.New(lazy).DrillContext(ctx, compareInput(t, ds, gt), drill.Options{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Fatal("drill over planted workload returned no findings")
	}

	st := lazy.Stats()
	if st.CachedBytes > budget {
		t.Errorf("CachedBytes %d exceeds budget %d after drill", st.CachedBytes, budget)
	}
	if st.Evictions == 0 {
		t.Error("expected evictions: the drill's cube set cannot fit a one-cube budget")
	}

	// Whatever was evicted rebuilds to the exact same cube, and a
	// permuted attribute set resolves to it.
	again, err := lazy.CubeN(ctx, []int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, probe) {
		t.Error("rebuilt 3-D cube differs from the eager-side build")
	}
	if got := lazy.Stats().CachedBytes; got > budget {
		t.Errorf("CachedBytes %d exceeds budget %d after rebuild", got, budget)
	}
}
