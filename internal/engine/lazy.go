package engine

import (
	"container/list"
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"opmap/internal/dataset"
	"opmap/internal/obsv"
	"opmap/internal/rulecube"
)

// DefaultCacheBytes is the cube LRU budget (all k ≥ 2 cubes) when
// LazyOptions leaves CacheBytes zero: 64 MiB ≈ 8M cells, far beyond
// the working set Smart Drill-Down-style exploration touches, small
// next to an eager all-pairs store on a wide schema.
const DefaultCacheBytes = 64 << 20

// cubeKey identifies a cached cube by its sorted condition-dimension
// list: "3" for the 1-D cube of attribute 3, "3,7" for a pair, and
// "1,3,7" for a 3-condition drill-down cube. Requests over the same
// attribute set in any order share one entry.
type cubeKey string

// keyOf builds the cache key of a normalized (sorted) attribute list.
func keyOf(attrs []int) cubeKey {
	b := make([]byte, 0, len(attrs)*4)
	for i, a := range attrs {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(a), 10)
	}
	return cubeKey(b)
}

// LazyOptions configures a LazySource.
type LazyOptions struct {
	// Attrs restricts the servable attributes (class excluded
	// automatically). Nil means all non-class attributes.
	Attrs []int
	// CacheBytes is the byte budget of the 2-D cube LRU. Zero means
	// DefaultCacheBytes; negative means unlimited.
	CacheBytes int64
}

// LazyStats is a point-in-time snapshot of a LazySource's counters,
// used by tests (singleflight: exactly one build per key) and the
// Session.EngineStats API. Global obsv metrics advance in lockstep.
type LazyStats struct {
	// OneDBuilds / TwoDBuilds count completed cube materializations;
	// TwoDBuilds covers every LRU-resident arity (pairs and k ≥ 3
	// drill-down cubes alike).
	OneDBuilds int64
	TwoDBuilds int64
	// Hits / Misses count LRU (k ≥ 2) lookups (1-D cubes are pinned
	// after the first build and tiny, so only the LRU is accounted).
	Hits   int64
	Misses int64
	// Evictions counts cubes dropped to satisfy the byte budget.
	Evictions int64
	// CachedBytes / CachedCubes describe the resident k ≥ 2 LRU.
	CachedBytes int64
	CachedCubes int
	// PinnedOneD is the number of resident 1-D cubes.
	PinnedOneD int
}

// lruEntry is one resident k ≥ 2 cube keyed by its normalized
// (sorted) attribute set.
type lruEntry struct {
	key   cubeKey
	attrs []int
	cube  *rulecube.Cube
	size  int64
}

// flight is an in-progress cube build. The leader closes done after
// publishing cube/err; followers wait on done or their own context.
type flight struct {
	done chan struct{}
	cube *rulecube.Cube
	err  error
}

// LazySource materializes rule cubes on first use. 1-D cubes (one per
// attribute, O(cardinality × classes) cells) are pinned once built;
// every higher-arity cube — pairs and the k ≥ 3 cubes drill-down
// requests — lives in one byte-budgeted LRU. Concurrent first-touch
// requests for the same cube are collapsed into a single build
// (per-key singleflight); build errors are returned to every waiter
// but never cached, so transient failures retry. Safe for concurrent
// use.
type LazySource struct {
	ds    *dataset.Dataset
	attrs []int
	inSet map[int]bool

	budget int64 // <0 = unlimited

	mu      sync.Mutex
	oneD    map[int]*rulecube.Cube
	nd      map[cubeKey]*list.Element // k ≥ 2 cubes; value: *lruEntry
	order   *list.List                // front = most recently used
	bytes   int64
	flights map[cubeKey]*flight // 1-D keys are single-attribute keys

	oneDBuilds atomic.Int64
	twoDBuilds atomic.Int64
	hits       atomic.Int64
	misses     atomic.Int64
	evictions  atomic.Int64
}

// NewLazy creates a lazy source over ds. The dataset must be fully
// categorical (discretize first), mirroring rulecube.BuildStore.
func NewLazy(ds *dataset.Dataset, opts LazyOptions) (*LazySource, error) {
	if ds == nil {
		return nil, fmt.Errorf("engine: nil dataset")
	}
	if !ds.AllCategorical() {
		return nil, fmt.Errorf("engine: dataset has continuous attributes; discretize first")
	}
	attrs, err := normalizeAttrs(ds, opts.Attrs)
	if err != nil {
		return nil, err
	}
	budget := opts.CacheBytes
	if budget == 0 {
		budget = DefaultCacheBytes
	}
	s := &LazySource{
		ds:      ds,
		attrs:   attrs,
		inSet:   make(map[int]bool, len(attrs)),
		budget:  budget,
		oneD:    make(map[int]*rulecube.Cube, len(attrs)),
		nd:      make(map[cubeKey]*list.Element),
		order:   list.New(),
		flights: make(map[cubeKey]*flight),
	}
	for _, a := range attrs {
		s.inSet[a] = true
	}
	return s, nil
}

// Dataset implements CubeSource.
func (s *LazySource) Dataset() *dataset.Dataset { return s.ds }

// Attrs implements CubeSource.
func (s *LazySource) Attrs() []int { return s.attrs }

// Stats snapshots the source's counters.
func (s *LazySource) Stats() LazyStats {
	s.mu.Lock()
	cachedBytes := s.bytes
	cachedCubes := s.order.Len()
	pinned := len(s.oneD)
	s.mu.Unlock()
	return LazyStats{
		OneDBuilds:  s.oneDBuilds.Load(),
		TwoDBuilds:  s.twoDBuilds.Load(),
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Evictions:   s.evictions.Load(),
		CachedBytes: cachedBytes,
		CachedCubes: cachedCubes,
		PinnedOneD:  pinned,
	}
}

// Cube1 implements CubeSource: the cube is built on first use and
// pinned thereafter.
func (s *LazySource) Cube1(ctx context.Context, attr int) (*rulecube.Cube, error) {
	if !s.inSet[attr] {
		return nil, fmt.Errorf("engine: no cube for attribute %d", attr)
	}
	attrs := []int{attr}
	s.mu.Lock()
	if c, ok := s.oneD[attr]; ok {
		s.mu.Unlock()
		return c, nil
	}
	return s.build(ctx, keyOf(attrs), attrs, func(c *rulecube.Cube) {
		s.oneD[attr] = c
		s.oneDBuilds.Add(1)
	})
}

// Cube2 implements CubeSource: LRU lookup, singleflight build on miss.
func (s *LazySource) Cube2(ctx context.Context, a, b int) (*rulecube.Cube, error) {
	if a == b {
		return nil, fmt.Errorf("engine: pair cube needs two distinct attributes, got (%d,%d)", a, b)
	}
	if !s.inSet[a] || !s.inSet[b] {
		return nil, fmt.Errorf("engine: no pair cube for attributes (%d,%d)", a, b)
	}
	if a > b {
		a, b = b, a
	}
	return s.lookupOrBuild(ctx, []int{a, b})
}

// CubeN implements CubeSource: the cube over an arbitrary attribute
// set, materialized on demand. The request is normalized to ascending
// attribute order — that is the returned cube's dimension order — so
// any permutation of the same set shares one cache entry. A single
// attribute is Cube1 (pinned); every k ≥ 2 cube shares the
// byte-budgeted LRU with the pair cubes.
func (s *LazySource) CubeN(ctx context.Context, attrs []int) (*rulecube.Cube, error) {
	norm, err := s.normalizeSet(attrs)
	if err != nil {
		return nil, err
	}
	if len(norm) == 1 {
		return s.Cube1(ctx, norm[0])
	}
	return s.lookupOrBuild(ctx, norm)
}

// normalizeSet validates an n-D request against the served set and
// returns the sorted copy that keys the cache.
func (s *LazySource) normalizeSet(attrs []int) ([]int, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("engine: empty attribute set in cube request")
	}
	norm := append([]int(nil), attrs...)
	sort.Ints(norm)
	for i, a := range norm {
		if !s.inSet[a] {
			return nil, fmt.Errorf("engine: no cube for attribute %d", a)
		}
		if i > 0 && norm[i-1] == a {
			return nil, fmt.Errorf("engine: duplicate attribute %d in cube request", a)
		}
	}
	return norm, nil
}

// lookupOrBuild serves a k ≥ 2 cube from the LRU or builds it under
// singleflight. attrs must already be normalized (sorted, validated).
func (s *LazySource) lookupOrBuild(ctx context.Context, attrs []int) (*rulecube.Cube, error) {
	key := keyOf(attrs)
	s.mu.Lock()
	if el, ok := s.nd[key]; ok {
		s.order.MoveToFront(el)
		s.mu.Unlock()
		s.hits.Add(1)
		obsv.Default().Counter(CubeCacheHitsCounterName).Inc()
		return el.Value.(*lruEntry).cube, nil
	}
	s.misses.Add(1)
	obsv.Default().Counter(CubeCacheMissesCounterName).Inc()
	return s.build(ctx, key, attrs, func(c *rulecube.Cube) {
		s.insertND(key, attrs, c)
		s.twoDBuilds.Add(1)
	})
}

// Cubes implements CubeSource's bulk method: one lock pass partitions
// the (deduplicated) requests into resident cubes, builds already in
// flight elsewhere, and keys this call leads; the led set materializes
// in a single shared dataset scan (rulecube.BuildMany), is committed to
// the caches, and every registered flight is released — so concurrent
// bulk and single-cube requests for the same key still collapse into
// one build. Joined flights are waited on afterwards under ctx.
func (s *LazySource) Cubes(ctx context.Context, reqs []CubeReq) ([]*rulecube.Cube, error) {
	out := make([]*rulecube.Cube, len(reqs))
	items, err := s.batchItems(reqs)
	if err != nil {
		return nil, err
	}
	part := s.partitionBatch(items, out)
	if len(part.toBuild) > 0 {
		if err := s.buildBatch(ctx, part, out); err != nil {
			return nil, err
		}
	}
	for _, w := range part.waits {
		select {
		case <-w.f.done:
			if w.f.err != nil {
				return nil, w.f.err
			}
			out[w.pos] = w.f.cube
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return out, nil
}

// batchItem is one bulk-request entry normalized to its cache key and
// sorted attribute list.
type batchItem struct {
	key   cubeKey
	attrs []int
}

// batchItems validates a bulk request list against the served set and
// normalizes each entry — either request form — to its cache key and
// sorted attribute list.
func (s *LazySource) batchItems(reqs []CubeReq) ([]batchItem, error) {
	items := make([]batchItem, len(reqs))
	for i, q := range reqs {
		var norm []int
		switch {
		case len(q.Attrs) > 0:
			n, err := s.normalizeSet(q.Attrs)
			if err != nil {
				return nil, err
			}
			norm = n
		case q.B < 0:
			if !s.inSet[q.A] {
				return nil, fmt.Errorf("engine: no cube for attribute %d", q.A)
			}
			norm = []int{q.A}
		default:
			if q.A == q.B {
				return nil, fmt.Errorf("engine: pair cube needs two distinct attributes, got (%d,%d)", q.A, q.B)
			}
			if !s.inSet[q.A] || !s.inSet[q.B] {
				return nil, fmt.Errorf("engine: no pair cube for attributes (%d,%d)", q.A, q.B)
			}
			a, b := q.A, q.B
			if a > b {
				a, b = b, a
			}
			norm = []int{a, b}
		}
		items[i] = batchItem{key: keyOf(norm), attrs: norm}
	}
	return items, nil
}

// batchWait is a request position answered by a build in flight
// elsewhere; the caller awaits its flight under its context.
type batchWait struct {
	pos int
	f   *flight
}

// batchPartition is the outcome of the one lock pass over a bulk
// request's keys: resident cubes are already filled into the output,
// builds in flight elsewhere are joined as waits, and the keys this
// call leads carry their registered flights and the output positions
// each will serve.
type batchPartition struct {
	waits     []batchWait
	toBuild   []batchItem
	flights   []*flight
	positions [][]int // positions served by each toBuild entry
}

// partitionBatch takes the single lock pass: it fills out from the
// caches (refreshing LRU order and counting hits/misses), joins
// flights other calls lead, and registers a flight for every key this
// call will build.
func (s *LazySource) partitionBatch(items []batchItem, out []*rulecube.Cube) *batchPartition {
	part := &batchPartition{}
	leadIdx := make(map[cubeKey]int)
	var hits, misses int64
	s.mu.Lock()
	for i, it := range items {
		if len(it.attrs) == 1 {
			if c, ok := s.oneD[it.attrs[0]]; ok {
				out[i] = c
				continue
			}
		} else if el, ok := s.nd[it.key]; ok {
			s.order.MoveToFront(el)
			out[i] = el.Value.(*lruEntry).cube
			hits++
			continue
		}
		if j, ok := leadIdx[it.key]; ok {
			part.positions[j] = append(part.positions[j], i)
			continue
		}
		if f, ok := s.flights[it.key]; ok {
			part.waits = append(part.waits, batchWait{pos: i, f: f})
			continue
		}
		f := &flight{done: make(chan struct{})}
		s.flights[it.key] = f
		leadIdx[it.key] = len(part.toBuild)
		part.toBuild = append(part.toBuild, it)
		part.flights = append(part.flights, f)
		part.positions = append(part.positions, []int{i})
		if len(it.attrs) >= 2 {
			misses++
		}
	}
	s.mu.Unlock()
	if hits > 0 {
		s.hits.Add(hits)
		obsv.Default().Counter(CubeCacheHitsCounterName).Add(hits)
	}
	if misses > 0 {
		s.misses.Add(misses)
		obsv.Default().Counter(CubeCacheMissesCounterName).Add(misses)
	}
	return part
}

// buildBatch runs the one shared scan for the keys this bulk call
// leads, commits the cubes, fills the led output positions, and
// releases every flight. On error the flights fail fast and nothing is
// cached, matching the single-build path.
func (s *LazySource) buildBatch(ctx context.Context, part *batchPartition, out []*rulecube.Cube) error {
	start := time.Now()
	cubes, err := rulecube.BuildMany(ctx, s.ds, batchCubeReqs(part.toBuild))
	if err != nil {
		s.failFlights(part, err)
		return err
	}
	obsv.Default().Histogram(BatchBuildHistogramName, nil).ObserveSince(start)
	s.commitBatch(part, cubes, out)
	return nil
}

// batchCubeReqs converts normalized batch items back into rulecube
// requests (the n-D form covers every arity).
func batchCubeReqs(toBuild []batchItem) []rulecube.CubeReq {
	rreqs := make([]rulecube.CubeReq, len(toBuild))
	for i, it := range toBuild {
		rreqs[i] = rulecube.CubeReqOf(it.attrs)
	}
	return rreqs
}

// failFlights releases every flight this call leads with the shared
// scan's error; nothing is cached, matching the single-build path.
func (s *LazySource) failFlights(part *batchPartition, err error) {
	for i, it := range part.toBuild {
		s.finish(it.key, part.flights[i], nil, err)
	}
}

// commitBatch caches the freshly built cubes under one lock, fills the
// output positions each led key serves, and releases the flights.
func (s *LazySource) commitBatch(part *batchPartition, cubes []*rulecube.Cube, out []*rulecube.Cube) {
	s.mu.Lock()
	for i, it := range part.toBuild {
		if len(it.attrs) == 1 {
			s.oneD[it.attrs[0]] = cubes[i]
			s.oneDBuilds.Add(1)
		} else {
			s.insertND(it.key, it.attrs, cubes[i])
			s.twoDBuilds.Add(1)
		}
	}
	s.mu.Unlock()
	for i, it := range part.toBuild {
		for _, pos := range part.positions[i] {
			out[pos] = cubes[i]
		}
		s.finish(it.key, part.flights[i], cubes[i], nil)
	}
}

// build resolves a cube miss under singleflight. Called with s.mu
// held; releases it before building. The leader registers a flight,
// builds outside the lock, publishes the result (calling commit with
// the lock held on success), removes the flight and closes done.
// Followers wait for done or their own ctx; an abandoned wait leaves
// the build running — its result is still cached for the next caller.
func (s *LazySource) build(ctx context.Context, key cubeKey, attrs []int, commit func(*rulecube.Cube)) (*rulecube.Cube, error) {
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		select {
		case <-f.done:
			return f.cube, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()

	if err := ctx.Err(); err != nil {
		// Canceled before the data pass: publish the error so queued
		// followers fail fast too; nothing is cached.
		s.finish(key, f, nil, err)
		return nil, err
	}
	start := time.Now()
	cube, err := rulecube.BuildCube(s.ds, attrs)
	if err == nil {
		obsv.Default().Histogram(LazyBuildHistogramName, nil).ObserveSince(start)
	}
	s.finish(key, f, cube, err)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	commit(cube)
	s.mu.Unlock()
	return cube, nil
}

// finish publishes a flight's outcome and retires it. Errors are not
// cached: the flight is removed before done is closed, so a request
// arriving after the failure starts a fresh build.
func (s *LazySource) finish(key cubeKey, f *flight, cube *rulecube.Cube, err error) {
	f.cube, f.err = cube, err
	s.mu.Lock()
	delete(s.flights, key)
	s.mu.Unlock()
	close(f.done)
}

// Budget returns the configured 2-D cube cache byte budget (negative
// means unlimited) — recorded in session snapshots so a warm start can
// restore the same engine configuration.
func (s *LazySource) Budget() int64 { return s.budget }

// ResidentCubes returns every cube currently materialized — pinned 1-D
// cubes by attribute index, then cached k ≥ 2 cubes ordered by arity
// and attribute list — the working set a session snapshot persists so
// a warm-started lazy engine skips re-counting them. The cubes are the
// source's own; callers must treat them as read-only.
func (s *LazySource) ResidentCubes() []*rulecube.Cube {
	s.mu.Lock()
	defer s.mu.Unlock()
	oneKeys := make([]int, 0, len(s.oneD))
	for a := range s.oneD {
		oneKeys = append(oneKeys, a)
	}
	sort.Ints(oneKeys)
	entries := make([]*lruEntry, 0, len(s.nd))
	for _, el := range s.nd {
		entries = append(entries, el.Value.(*lruEntry))
	}
	sort.Slice(entries, func(i, j int) bool {
		ai, aj := entries[i].attrs, entries[j].attrs
		if len(ai) != len(aj) {
			return len(ai) < len(aj)
		}
		for p := range ai {
			if ai[p] != aj[p] {
				return ai[p] < aj[p]
			}
		}
		return false
	})
	out := make([]*rulecube.Cube, 0, len(oneKeys)+len(entries))
	for _, a := range oneKeys {
		out = append(out, s.oneD[a])
	}
	for _, e := range entries {
		out = append(out, e.cube)
	}
	return out
}

// SeedCubes installs cubes counted in an earlier process — a snapshot's
// resident set — so the first touch of each is a cache hit instead of a
// data pass. Every cube is validated against the dataset (attribute
// membership, per-dimension cardinality, class count); a mismatch
// fails the whole seed without mutating the caches, since a snapshot
// that disagrees with the data is stale and none of it can be trusted.
// k ≥ 2 cubes enter the LRU front in the order given and may evict
// under the byte budget. Returns the number of cubes accepted
// (already-resident duplicates are skipped; an over-budget cube may
// still evict). Build counters do not advance: seeded cubes were not
// built here.
func (s *LazySource) SeedCubes(cubes []*rulecube.Cube) (int, error) {
	type placed struct {
		attrs []int // nil for 1-D (pinned) entries
		one   int
		cube  *rulecube.Cube
	}
	plan := make([]placed, 0, len(cubes))
	for i, c := range cubes {
		if c == nil {
			return 0, fmt.Errorf("engine: seed cube %d is nil", i)
		}
		if c.NumClasses() != s.ds.NumClasses() {
			return 0, fmt.Errorf("engine: seed cube %d has %d classes, dataset has %d", i, c.NumClasses(), s.ds.NumClasses())
		}
		idx := c.AttrIndices()
		if len(idx) == 0 {
			return 0, fmt.Errorf("engine: seed cube %d has no condition dimensions", i)
		}
		seen := make(map[int]bool, len(idx))
		for pos, a := range idx {
			if !s.inSet[a] {
				return 0, fmt.Errorf("engine: seed cube %d references attribute %d outside the served set", i, a)
			}
			if seen[a] {
				return 0, fmt.Errorf("engine: seed cube %d repeats attribute %d", i, a)
			}
			seen[a] = true
			card := s.ds.Cardinality(a)
			if card == 0 {
				card = 1
			}
			if c.Dim(pos) != card {
				return 0, fmt.Errorf("engine: seed cube %d dimension %d has cardinality %d, dataset says %d", i, pos, c.Dim(pos), card)
			}
		}
		if len(idx) == 1 {
			plan = append(plan, placed{one: idx[0], cube: c})
			continue
		}
		norm := append([]int(nil), idx...)
		sort.Ints(norm)
		plan = append(plan, placed{attrs: norm, cube: c})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seeded := 0
	for _, p := range plan {
		if p.attrs == nil {
			if _, ok := s.oneD[p.one]; ok {
				continue
			}
			s.oneD[p.one] = p.cube
			seeded++
			continue
		}
		key := keyOf(p.attrs)
		if _, ok := s.nd[key]; ok {
			continue
		}
		s.insertND(key, p.attrs, p.cube)
		seeded++
	}
	return seeded, nil
}

// ApplyRow folds one appended record into every resident cube; it is
// IngestRows for a single-row batch.
func (s *LazySource) ApplyRow(rowCodes []int32, class int32) error {
	return s.IngestRows([][]int32{rowCodes}, []int32{class})
}

// IngestRows folds a batch of appended records into every resident
// cube — pinned 1-D cubes and cached 2-D cubes alike — growing
// dimensions where the batch registered new labels (one SyncDims per
// cube per batch, not per row) and re-accounting LRU bytes (a grown
// cube is bigger; the budget may evict). Non-resident cubes need
// nothing: they materialize later from the already-updated dataset.
// Each row is the full working-dataset row indexed by attribute index,
// with classes the parallel class codes; the delta application routes
// through rulecube's additive-merge primitive. Callers must ensure no
// query is concurrently reading cube counts (the Session ingest lock
// provides this); the source's own lock only protects the cache
// structures.
func (s *LazySource) IngestRows(rows [][]int32, classes []int32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.oneD {
		c.SyncDims()
		if _, err := c.IngestRows(rows, classes); err != nil {
			return err
		}
	}
	for el := s.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*lruEntry)
		e.cube.SyncDims()
		if _, err := e.cube.IngestRows(rows, classes); err != nil {
			return err
		}
		if grown := e.cube.SizeBytes(); grown != e.size {
			s.bytes += grown - e.size
			e.size = grown
		}
	}
	if s.budget >= 0 {
		for s.bytes > s.budget && s.order.Len() > 0 {
			tail := s.order.Back()
			ev := tail.Value.(*lruEntry)
			s.order.Remove(tail)
			delete(s.nd, ev.key)
			s.bytes -= ev.size
			s.evictions.Add(1)
			obsv.Default().Counter(CubeCacheEvictionsCounterName).Inc()
		}
	}
	obsv.Default().Gauge(CubeCacheBytesGaugeName).Set(s.bytes)
	return nil
}

// insertND records a freshly built k ≥ 2 cube and evicts from the LRU
// tail until the budget holds. Called with s.mu held. The fresh entry
// is inserted first and may itself be evicted if it alone exceeds the
// budget — the caller still returns the cube it holds; it just won't
// be resident for the next request.
func (s *LazySource) insertND(key cubeKey, attrs []int, c *rulecube.Cube) {
	if el, ok := s.nd[key]; ok {
		// A second flight can theoretically land after an eviction
		// re-miss; keep the resident entry authoritative.
		s.order.MoveToFront(el)
		return
	}
	e := &lruEntry{key: key, attrs: append([]int(nil), attrs...), cube: c, size: c.SizeBytes()}
	s.nd[key] = s.order.PushFront(e)
	s.bytes += e.size
	if s.budget >= 0 {
		for s.bytes > s.budget && s.order.Len() > 0 {
			tail := s.order.Back()
			ev := tail.Value.(*lruEntry)
			s.order.Remove(tail)
			delete(s.nd, ev.key)
			s.bytes -= ev.size
			s.evictions.Add(1)
			obsv.Default().Counter(CubeCacheEvictionsCounterName).Inc()
		}
	}
	obsv.Default().Gauge(CubeCacheBytesGaugeName).Set(s.bytes)
}
