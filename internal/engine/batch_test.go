package engine_test

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"opmap/internal/engine"
	"opmap/internal/obsv"
	"opmap/internal/rulecube"
	"opmap/internal/testutil"
)

// TestCubesOracle checks the bulk path against the single-cube path on
// both sources: every request shape (1-D, pair in both orders,
// duplicates) must yield exactly the cube Cube1/Cube2 returns.
func TestCubesOracle(t *testing.T) {
	ds, gt, eager, lazy := oracle(t)
	ctx := context.Background()
	phone := ds.AttrIndex(gt.PhoneAttr)
	dist := ds.AttrIndex(gt.DistinguishingAttr)
	other := 0
	if other == phone || other == dist {
		other = 1
	}
	reqs := []engine.CubeReq{
		{A: phone, B: -1},
		{A: phone, B: dist},
		{A: dist, B: phone}, // same cube, reversed request order
		{A: other, B: -1},
		{A: phone, B: other},
		{A: phone, B: dist}, // duplicate
	}
	for _, src := range []engine.CubeSource{eager, lazy} {
		got, err := src.Cubes(ctx, reqs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(reqs) {
			t.Fatalf("got %d cubes, want %d", len(got), len(reqs))
		}
		for i, q := range reqs {
			var want *rulecube.Cube
			if q.B < 0 {
				want, err = src.Cube1(ctx, q.A)
			} else {
				want, err = src.Cube2(ctx, q.A, q.B)
			}
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got[i], want) {
				t.Errorf("req %d (%+v): bulk cube differs from single-cube path", i, q)
			}
		}
		if got[1] != got[2] || got[1] != got[5] {
			t.Error("normalized duplicate requests should share one cube")
		}
	}
}

// TestCubesValidation mirrors the single-cube contract on the bulk
// path: out-of-range, class and self-pair requests are errors, and an
// empty request list is a no-op.
func TestCubesValidation(t *testing.T) {
	ds, _, _, lazy := oracle(t)
	ctx := context.Background()
	cls := ds.ClassIndex()
	for _, tc := range []struct {
		name string
		reqs []engine.CubeReq
	}{
		{"out of range", []engine.CubeReq{{A: ds.NumAttrs(), B: -1}}},
		{"class 1-D", []engine.CubeReq{{A: cls, B: -1}}},
		{"class pair", []engine.CubeReq{{A: 0, B: cls}}},
		{"self pair", []engine.CubeReq{{A: 1, B: 1}}},
	} {
		if _, err := lazy.Cubes(ctx, tc.reqs); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	out, err := lazy.Cubes(ctx, nil)
	if err != nil || len(out) != 0 {
		t.Errorf("empty bulk request: got (%v, %v)", out, err)
	}
}

// TestCubesSharedScan asserts the tentpole property: a cold bulk
// request performs exactly one dataset scan however many cubes it
// materializes, and a warm repeat performs none.
func TestCubesSharedScan(t *testing.T) {
	ds, _, _, lazy := oracle(t)
	ctx := context.Background()
	var reqs []engine.CubeReq
	reqs = append(reqs, engine.CubeReq{A: 0, B: -1})
	for a := 1; a < ds.NumAttrs(); a++ {
		if a == ds.ClassIndex() {
			continue
		}
		reqs = append(reqs, engine.CubeReq{A: 0, B: a}, engine.CubeReq{A: a, B: -1})
	}
	scans := obsv.Default().Counter(rulecube.CubeScansCounterName)
	s0 := scans.Value()
	if _, err := lazy.Cubes(ctx, reqs); err != nil {
		t.Fatal(err)
	}
	if d := scans.Value() - s0; d != 1 {
		t.Errorf("cold bulk request performed %d scans, want exactly 1", d)
	}
	s1 := scans.Value()
	if _, err := lazy.Cubes(ctx, reqs); err != nil {
		t.Fatal(err)
	}
	if d := scans.Value() - s1; d != 0 {
		t.Errorf("warm bulk request performed %d scans, want 0", d)
	}
}

// TestCubesSingleflightWithSingles runs bulk requests concurrently with
// single Cube2 calls over the same keys: the singleflight registry must
// give every key exactly one build, whichever path gets there first.
func TestCubesSingleflightWithSingles(t *testing.T) {
	defer testutil.VerifyNoLeak(t)()
	ds, gt, eager, lazy := oracle(t)
	ctx := context.Background()
	phone := ds.AttrIndex(gt.PhoneAttr)
	var pairs [][2]int
	var reqs []engine.CubeReq
	for a := 0; a < ds.NumAttrs(); a++ {
		if a == ds.ClassIndex() || a == phone {
			continue
		}
		pairs = append(pairs, [2]int{phone, a})
		reqs = append(reqs, engine.CubeReq{A: phone, B: a})
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				if _, err := lazy.Cubes(ctx, reqs); err != nil {
					errs <- err
				}
				return
			}
			for _, p := range pairs {
				if _, err := lazy.Cube2(ctx, p[0], p[1]); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := lazy.Stats().TwoDBuilds; got != int64(len(pairs)) {
		t.Errorf("built %d pair cubes for %d keys: singleflight across bulk and single paths failed", got, len(pairs))
	}
	for _, p := range pairs {
		want, err := eager.Cube2(ctx, p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := lazy.Cube2(ctx, p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("pair %v: concurrent bulk build produced a wrong cube", p)
		}
	}
}
