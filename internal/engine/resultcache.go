package engine

import (
	"container/list"
	"sync"

	"opmap/internal/obsv"
)

// DefaultResultCacheEntries caps the query-result cache when
// ResultCacheOptions leave MaxEntries zero. Compare/Sweep results are
// small (top-k attribute scores, not cubes), so an entry count — not a
// byte budget — is the right control.
const DefaultResultCacheEntries = 256

// ResultCache memoizes finished query results (Compare, Sweep,
// Impressions) under a (snapshot version, normalized query key) pair.
// The version fences staleness: Invalidate bumps it and clears the
// cache, so results computed against a dropped snapshot can neither be
// returned nor inserted afterwards — re-discretizing or downsampling a
// Session must never serve counts from the old cube space. Entries
// beyond the cap evict least-recently-used. Safe for concurrent use.
type ResultCache struct {
	mu      sync.Mutex
	version int64
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	max     int

	hits   int64
	misses int64
}

// rcEntry is one memoized result.
type rcEntry struct {
	key string
	val any
}

// NewResultCache creates a cache holding at most max entries
// (DefaultResultCacheEntries when max is zero or negative).
func NewResultCache(max int) *ResultCache {
	if max <= 0 {
		max = DefaultResultCacheEntries
	}
	return &ResultCache{
		entries: make(map[string]*list.Element),
		order:   list.New(),
		max:     max,
	}
}

// Version returns the current snapshot version. Callers snapshot it
// before running a query and pass it to Get/Put, so a concurrent
// Invalidate between compute and insert drops the stale result instead
// of caching it.
func (rc *ResultCache) Version() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.version
}

// Invalidate advances the version and empties the cache.
func (rc *ResultCache) Invalidate() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.version++
	rc.entries = make(map[string]*list.Element)
	rc.order.Init()
}

// Get returns the memoized value for key if it was stored under the
// same version and is still resident.
func (rc *ResultCache) Get(version int64, key string) (any, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if version == rc.version {
		if el, ok := rc.entries[key]; ok {
			rc.order.MoveToFront(el)
			rc.hits++
			obsv.Default().Counter(ResultCacheHitsCounterName).Inc()
			return el.Value.(*rcEntry).val, true
		}
	}
	rc.misses++
	obsv.Default().Counter(ResultCacheMissesCounterName).Inc()
	return nil, false
}

// Put memoizes val under key if version is still current; stale
// versions are dropped silently. Existing entries are refreshed.
func (rc *ResultCache) Put(version int64, key string, val any) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if version != rc.version {
		return
	}
	if el, ok := rc.entries[key]; ok {
		el.Value.(*rcEntry).val = val
		rc.order.MoveToFront(el)
		return
	}
	rc.entries[key] = rc.order.PushFront(&rcEntry{key: key, val: val})
	for rc.order.Len() > rc.max {
		tail := rc.order.Back()
		rc.order.Remove(tail)
		delete(rc.entries, tail.Value.(*rcEntry).key)
	}
}

// Len returns the number of resident entries.
func (rc *ResultCache) Len() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.order.Len()
}

// ResultCacheStats is a snapshot of cache effectiveness counters.
type ResultCacheStats struct {
	Hits    int64
	Misses  int64
	Entries int
	Version int64
}

// Stats snapshots the cache counters.
func (rc *ResultCache) Stats() ResultCacheStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return ResultCacheStats{Hits: rc.hits, Misses: rc.misses, Entries: rc.order.Len(), Version: rc.version}
}
