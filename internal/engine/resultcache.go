package engine

import (
	"container/list"
	"sync"

	"opmap/internal/obsv"
)

// DefaultResultCacheEntries caps the query-result cache when
// ResultCacheOptions leave MaxEntries zero. Compare/Sweep results are
// small (top-k attribute scores, not cubes), so an entry count — not a
// byte budget — is the right control.
const DefaultResultCacheEntries = 256

// ResultCache memoizes finished query results (Compare, Sweep,
// Impressions) under a (snapshot version, normalized query key) pair.
// The version fences staleness: Invalidate bumps it and clears the
// cache, so results computed against a dropped snapshot can neither be
// returned nor inserted afterwards — re-discretizing or downsampling a
// Session must never serve counts from the old cube space.
//
// Streaming appends invalidate more surgically: each entry may carry
// the set of attribute indices its result depends on, and BumpAttrs
// advances a per-attribute epoch and removes only the entries whose
// dependency set intersects the appended attributes (entries with no
// recorded set depend on everything and always go). An append batch of
// rows that are missing most fields — the common shape in streaming
// call logs — therefore leaves restricted Compare results on untouched
// attributes servable instead of cold. Entries beyond the cap evict
// least-recently-used. Safe for concurrent use.
type ResultCache struct {
	mu      sync.Mutex
	version int64
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	max     int

	attrEpochs map[int]int64 // per-attribute append epoch
	anyEpoch   int64         // bumped by every BumpAttrs call

	hits          int64
	misses        int64
	invalidations int64
}

// rcEntry is one memoized result. deps lists the attribute indices the
// result was computed from; nil means the result depends on every
// attribute (sweeps and impressions rank across all of them).
type rcEntry struct {
	key  string
	val  any
	deps []int
}

// NewResultCache creates a cache holding at most max entries
// (DefaultResultCacheEntries when max is zero or negative).
func NewResultCache(max int) *ResultCache {
	if max <= 0 {
		max = DefaultResultCacheEntries
	}
	return &ResultCache{
		entries:    make(map[string]*list.Element),
		order:      list.New(),
		max:        max,
		attrEpochs: make(map[int]int64),
	}
}

// Version returns the current snapshot version. Callers snapshot it
// before running a query and pass it to Get/Put, so a concurrent
// Invalidate between compute and insert drops the stale result instead
// of caching it.
func (rc *ResultCache) Version() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.version
}

// Invalidate advances the version and empties the cache.
func (rc *ResultCache) Invalidate() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.version++
	rc.entries = make(map[string]*list.Element)
	rc.order.Init()
}

// Get returns the memoized value for key if it was stored under the
// same version and is still resident.
func (rc *ResultCache) Get(version int64, key string) (any, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if version == rc.version {
		if el, ok := rc.entries[key]; ok {
			rc.order.MoveToFront(el)
			rc.hits++
			obsv.Default().Counter(ResultCacheHitsCounterName).Inc()
			return el.Value.(*rcEntry).val, true
		}
	}
	rc.misses++
	obsv.Default().Counter(ResultCacheMissesCounterName).Inc()
	return nil, false
}

// Put memoizes val under key if version is still current; stale
// versions are dropped silently. Existing entries are refreshed. The
// entry depends on every attribute: any append invalidates it. Results
// with a narrower footprint should use PutDeps.
func (rc *ResultCache) Put(version int64, key string, val any) {
	rc.PutDeps(version, key, val, nil)
}

// PutDeps memoizes val under key recording the attribute indices the
// result depends on, so BumpAttrs can spare it when an append batch
// touches only other attributes. nil deps means "depends on all".
func (rc *ResultCache) PutDeps(version int64, key string, val any, deps []int) {
	if deps != nil {
		deps = append([]int(nil), deps...)
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if version != rc.version {
		return
	}
	if el, ok := rc.entries[key]; ok {
		e := el.Value.(*rcEntry)
		e.val = val
		e.deps = deps
		rc.order.MoveToFront(el)
		return
	}
	rc.entries[key] = rc.order.PushFront(&rcEntry{key: key, val: val, deps: deps})
	for rc.order.Len() > rc.max {
		tail := rc.order.Back()
		rc.order.Remove(tail)
		delete(rc.entries, tail.Value.(*rcEntry).key)
	}
}

// BumpAttrs records an append batch that changed the given attribute
// indices: each attribute's epoch advances and every resident entry
// whose dependency set intersects attrs — plus every entry with no
// recorded set, which depends on all of them — is removed. It returns
// how many entries were invalidated. Unlike Invalidate, the version is
// unchanged: results for untouched attributes stay servable.
func (rc *ResultCache) BumpAttrs(attrs []int) int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.anyEpoch++
	touched := make(map[int]bool, len(attrs))
	for _, a := range attrs {
		rc.attrEpochs[a]++
		touched[a] = true
	}
	removed := 0
	for el := rc.order.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*rcEntry)
		stale := e.deps == nil
		for _, d := range e.deps {
			if touched[d] {
				stale = true
				break
			}
		}
		if stale {
			rc.order.Remove(el)
			delete(rc.entries, e.key)
			removed++
		}
		el = next
	}
	if removed > 0 {
		rc.invalidations += int64(removed)
		obsv.Default().Counter(ResultCacheInvalidationsCounterName).Add(int64(removed))
	}
	return removed
}

// AttrEpoch returns how many append batches have touched attribute a
// since the cache was created.
func (rc *ResultCache) AttrEpoch(a int) int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.attrEpochs[a]
}

// Len returns the number of resident entries.
func (rc *ResultCache) Len() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.order.Len()
}

// ResultCacheStats is a snapshot of cache effectiveness counters.
type ResultCacheStats struct {
	Hits          int64
	Misses        int64
	Entries       int
	Version       int64
	Invalidations int64 // entries removed by per-attribute epoch bumps
}

// Stats snapshots the cache counters.
func (rc *ResultCache) Stats() ResultCacheStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return ResultCacheStats{
		Hits:          rc.hits,
		Misses:        rc.misses,
		Entries:       rc.order.Len(),
		Version:       rc.version,
		Invalidations: rc.invalidations,
	}
}
