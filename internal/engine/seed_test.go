package engine_test

import (
	"context"
	"reflect"
	"testing"

	"opmap/internal/compare"
	"opmap/internal/engine"
	"opmap/internal/rulecube"
	"opmap/internal/workload"
)

// TestSeedCubes pins the warm-start contract: cubes lifted from one
// engine install into a fresh LazySource without advancing build
// counters, and queries over the seeded set are all hits.
func TestSeedCubes(t *testing.T) {
	ds, gt, eager, lazy := oracle(t)
	ctx := context.Background()
	in := compareInput(t, ds, gt)

	// Materialize a working set in a first lazy engine.
	src, err := engine.NewLazy(ds, engine.LazyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := compare.NewSource(src).CompareContext(ctx, in, compare.Options{})
	if err != nil {
		t.Fatal(err)
	}
	resident := src.ResidentCubes()
	if len(resident) == 0 {
		t.Fatal("no resident cubes after a compare")
	}
	// ResidentCubes must be deterministic: same order on every call.
	if !reflect.DeepEqual(resident, src.ResidentCubes()) {
		t.Error("ResidentCubes order is not deterministic")
	}

	n, err := lazy.SeedCubes(resident)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(resident) {
		t.Errorf("seeded %d of %d cubes", n, len(resident))
	}
	st := lazy.Stats()
	if st.OneDBuilds != 0 || st.TwoDBuilds != 0 {
		t.Errorf("seeding advanced build counters: 1-D %d, 2-D %d", st.OneDBuilds, st.TwoDBuilds)
	}
	got, err := compare.NewSource(lazy).CompareContext(ctx, in, compare.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("seeded engine's Compare differs from the builder's")
	}
	st = lazy.Stats()
	if st.OneDBuilds != 0 || st.TwoDBuilds != 0 {
		t.Errorf("seeded engine built cubes for a covered query: 1-D %d, 2-D %d", st.OneDBuilds, st.TwoDBuilds)
	}

	// Re-seeding the same cubes is a no-op, not an error.
	n, err = lazy.SeedCubes(resident)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("re-seed accepted %d already-resident cubes", n)
	}
	_ = eager
}

// TestSeedCubesRejectsMismatch pins the all-or-nothing validation: one
// incompatible cube rejects the whole batch without mutating the
// engine.
func TestSeedCubesRejectsMismatch(t *testing.T) {
	ds, gt, _, lazy := oracle(t)
	ctx := context.Background()

	// Cubes counted over a different dataset shape (more phones → wider
	// dictionaries) must not seed.
	other, _, err := workload.CallLog(workload.CallLogConfig{Seed: 7, Records: 4000, NumPhones: 9, NoiseAttrs: 4})
	if err != nil {
		t.Fatal(err)
	}
	store, err := rulecube.BuildStore(other, rulecube.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lazy.SeedCubes(store.Cubes()); err == nil {
		t.Fatal("cubes over a mismatched dataset seeded")
	}
	st := lazy.Stats()
	if st.PinnedOneD != 0 || st.CachedCubes != 0 {
		t.Errorf("rejected seed left cubes behind: 1-D %d, 2-D %d", st.PinnedOneD, st.CachedCubes)
	}
	// The engine still works cold after the rejected seed.
	in := compareInput(t, ds, gt)
	if _, err := compare.NewSource(lazy).CompareContext(ctx, in, compare.Options{}); err != nil {
		t.Fatal(err)
	}

	// A nil cube in the batch is rejected too.
	if _, err := lazy.SeedCubes([]*rulecube.Cube{nil}); err == nil {
		t.Error("nil cube seeded")
	}
}
