// Package engine abstracts cube access behind a CubeSource so query
// layers (compare, gi, the public Session API, the opmapd daemon) no
// longer care whether cubes were pre-materialized or are built on
// demand. The paper's deployed system pre-computes every rule cube
// offline (Section V.C); COMPARE (arXiv:2107.11967) and Smart
// Drill-Down (arXiv:1412.0364) observe that interactive comparison
// workloads touch a small, skewed subset of the cube lattice and are
// dominated by repeated overlapping aggregates — so the production
// shape is lazy materialization with caching, which LazySource
// provides, while Eager wraps the existing rulecube.Store unchanged.
package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"opmap/internal/dataset"
	"opmap/internal/obsv"
	"opmap/internal/rulecube"
)

// Metric names recorded by the engine layer. The 2-D cube cache (the
// byte-budgeted LRU inside LazySource) owns the cube_cache family;
// result-cache counters are advanced by ResultCache. All are plain
// counters/gauges in the obsv default registry so they surface on
// opmapd's /metrics endpoint.
const (
	// CubeCacheHitsCounterName counts 2-D cube requests served from the
	// LRU without a build.
	CubeCacheHitsCounterName = "opmap_cube_cache_hits_total"
	// CubeCacheMissesCounterName counts 2-D cube requests that had to
	// materialize (or join an in-flight materialization of) the cube.
	CubeCacheMissesCounterName = "opmap_cube_cache_misses_total"
	// CubeCacheEvictionsCounterName counts cubes dropped from the LRU to
	// satisfy the byte budget.
	CubeCacheEvictionsCounterName = "opmap_cube_cache_evictions_total"
	// CubeCacheBytesGaugeName tracks resident 2-D cube bytes in the LRU.
	CubeCacheBytesGaugeName = "opmap_cube_cache_bytes"
	// LazyBuildHistogramName times each on-demand cube build (1-D and
	// 2-D) performed by a LazySource — the user-facing cold-path cost.
	LazyBuildHistogramName = "opmap_lazy_build_seconds"
	// ResultCacheHitsCounterName / ResultCacheMissesCounterName count
	// query-result cache lookups (Compare/Sweep/Impressions).
	ResultCacheHitsCounterName   = "opmap_result_cache_hits_total"
	ResultCacheMissesCounterName = "opmap_result_cache_misses_total"
	// ResultCacheInvalidationsCounterName counts cached results removed
	// by per-attribute epoch bumps when appended rows touched an
	// attribute the result depended on.
	ResultCacheInvalidationsCounterName = "opmap_resultcache_invalidations_total"
	// BatchBuildHistogramName times each shared-scan batch build a
	// LazySource performs for a bulk Cubes request — one observation per
	// scan, however many cubes it materialized.
	BatchBuildHistogramName = "opmap_batch_build_seconds"
)

// PreRegister creates every engine metric series in reg at zero so
// servers expose them before the first query touches them (the ci
// smoke asserts `opmap_cube_cache_misses_total 0` on a freshly started
// lazy daemon). Each name is the constant itself, so the registration
// site stays greppable and the metricname analyzer can check it.
func PreRegister(reg *obsv.Registry) {
	reg.Counter(CubeCacheHitsCounterName)
	reg.Counter(CubeCacheMissesCounterName)
	reg.Counter(CubeCacheEvictionsCounterName)
	reg.Counter(ResultCacheHitsCounterName)
	reg.Counter(ResultCacheMissesCounterName)
	reg.Counter(ResultCacheInvalidationsCounterName)
	reg.Gauge(CubeCacheBytesGaugeName)
	reg.Histogram(LazyBuildHistogramName, nil)
	reg.Histogram(BatchBuildHistogramName, nil)
}

// CubeReq names one cube of a bulk request: the 1-D (attr × class)
// cube when B is negative, the pair cube over {A, B} otherwise. Unlike
// rulecube.CubeReq, pair order does not matter: Cubes returns the
// normalized (min, max) cube either way, matching Cube2. Attrs, when
// non-empty, supersedes A/B and requests the cube over an arbitrary
// attribute set (any order; the served cube's dimensions are the set
// in ascending order, matching CubeN).
type CubeReq struct {
	A int
	B int
	// Attrs is the n-D request form; nil keeps the two-field form.
	Attrs []int
}

// CubeReqOf builds the n-D form of a bulk request.
func CubeReqOf(attrs []int) CubeReq { return CubeReq{A: -1, B: -1, Attrs: attrs} }

// attrList returns the request's effective attribute list.
func (q CubeReq) attrList() []int {
	if len(q.Attrs) > 0 {
		return q.Attrs
	}
	if q.B < 0 {
		return []int{q.A}
	}
	return []int{q.A, q.B}
}

// CubeSource is the engine contract: read access to the rule cubes of
// one dataset snapshot, from the 1-D (attribute × class) cubes up to
// arbitrary attribute sets. Implementations must be safe for
// concurrent use. Cube2 accepts the pair in either order and returns
// the cube with min(a,b) as its first condition dimension, matching
// rulecube.Store.Cube2. A source never returns (nil, nil): an
// unavailable cube is an error.
type CubeSource interface {
	// Dataset returns the (discretized) dataset the cubes are counted
	// over.
	Dataset() *dataset.Dataset
	// Attrs returns the servable attribute indices in ascending order.
	// Callers must not modify the slice.
	Attrs() []int
	// Cube1 returns the 2-D cube (attr × class).
	Cube1(ctx context.Context, attr int) (*rulecube.Cube, error)
	// Cube2 returns the 3-D cube over the attribute pair.
	Cube2(ctx context.Context, a, b int) (*rulecube.Cube, error)
	// CubeN returns the cube over an arbitrary attribute set (no
	// duplicates, any order). The returned cube's condition dimensions
	// are the set in ascending attribute order, so any permutation of
	// the same set is one cube. len(attrs) == 1 matches Cube1 and
	// len(attrs) == 2 matches Cube2; k ≥ 3 serves the multi-condition
	// drill-down path.
	CubeN(ctx context.Context, attrs []int) (*rulecube.Cube, error)
	// Cubes resolves a batch of cube requests at once, returning the
	// cubes in request order. A lazy source answers every cache miss
	// from one shared dataset scan (rulecube.BuildMany) instead of one
	// scan per cube; an eager source answers from the store. Callers
	// that know their full cube needs up front (a sweep, a one-vs-rest
	// over all values, a drill-down frontier expansion) should declare
	// them here rather than faulting cubes in one at a time.
	Cubes(ctx context.Context, reqs []CubeReq) ([]*rulecube.Cube, error)
}

// Eager adapts a fully materialized rulecube.Store to CubeSource. For
// the 1-D and 2-D cubes the store pre-materializes it performs no
// builds: a cube the store lacks is an error, preserving the pre-PR
// behaviour of the compare and gi layers. k ≥ 3 requests — which no
// store materializes — are served by an internal lazy source over the
// store's dataset, created on first use, so eager sessions get
// drill-down with the same byte-budgeted caching as lazy ones.
type Eager struct {
	store *rulecube.Store

	ndMu sync.Mutex
	nd   *LazySource // lazily created for k ≥ 3 cubes
}

// NewEager wraps store. A nil store yields a source whose every cube
// lookup errors (callers construct sources before cubes exist only in
// tests).
func NewEager(store *rulecube.Store) *Eager { return &Eager{store: store} }

// Store returns the wrapped store, for eager-only operations
// (persistence, baseline exploration, visual rendering).
func (e *Eager) Store() *rulecube.Store { return e.store }

// Dataset implements CubeSource.
func (e *Eager) Dataset() *dataset.Dataset {
	if e.store == nil {
		return nil
	}
	return e.store.Dataset()
}

// Attrs implements CubeSource.
func (e *Eager) Attrs() []int {
	if e.store == nil {
		return nil
	}
	return e.store.Attrs()
}

// Cube1 implements CubeSource.
func (e *Eager) Cube1(_ context.Context, attr int) (*rulecube.Cube, error) {
	if e.store == nil {
		return nil, fmt.Errorf("engine: no cube store")
	}
	c := e.store.Cube1(attr)
	if c == nil {
		return nil, fmt.Errorf("engine: no cube for attribute %d", attr)
	}
	return c, nil
}

// Cube2 implements CubeSource.
func (e *Eager) Cube2(_ context.Context, a, b int) (*rulecube.Cube, error) {
	if e.store == nil {
		return nil, fmt.Errorf("engine: no cube store")
	}
	c := e.store.Cube2(a, b)
	if c == nil {
		return nil, fmt.Errorf("engine: no pair cube for attributes (%d,%d)", a, b)
	}
	return c, nil
}

// CubeN implements CubeSource: 1-D and 2-D sets answer from the store;
// k ≥ 3 sets materialize through the internal lazy source.
func (e *Eager) CubeN(ctx context.Context, attrs []int) (*rulecube.Cube, error) {
	switch len(attrs) {
	case 0:
		return nil, fmt.Errorf("engine: empty attribute set in cube request")
	case 1:
		return e.Cube1(ctx, attrs[0])
	case 2:
		if attrs[0] == attrs[1] {
			return nil, fmt.Errorf("engine: pair cube needs two distinct attributes, got (%d,%d)", attrs[0], attrs[1])
		}
		return e.Cube2(ctx, attrs[0], attrs[1])
	}
	nd, err := e.ndSource()
	if err != nil {
		return nil, err
	}
	return nd.CubeN(ctx, attrs)
}

// ndSource returns (creating on first use) the internal lazy source
// serving k ≥ 3 cubes over the store's dataset and attribute set.
func (e *Eager) ndSource() (*LazySource, error) {
	if e.store == nil {
		return nil, fmt.Errorf("engine: no cube store")
	}
	e.ndMu.Lock()
	defer e.ndMu.Unlock()
	if e.nd == nil {
		src, err := NewLazy(e.store.Dataset(), LazyOptions{Attrs: e.store.Attrs()})
		if err != nil {
			return nil, err
		}
		e.nd = src
	}
	return e.nd, nil
}

// Cubes implements CubeSource: 1-D and 2-D cubes are already
// materialized, so those requests are store lookups; k ≥ 3 requests
// are forwarded as one bulk request to the internal lazy source so
// its cache misses share a single dataset scan.
func (e *Eager) Cubes(ctx context.Context, reqs []CubeReq) ([]*rulecube.Cube, error) {
	out := make([]*rulecube.Cube, len(reqs))
	var ndPos []int
	var ndReqs []CubeReq
	for i, q := range reqs {
		attrs := q.attrList()
		if len(attrs) >= 3 {
			ndPos = append(ndPos, i)
			ndReqs = append(ndReqs, q)
			continue
		}
		var (
			c   *rulecube.Cube
			err error
		)
		if len(attrs) == 1 {
			c, err = e.Cube1(ctx, attrs[0])
		} else {
			if attrs[0] == attrs[1] {
				return nil, fmt.Errorf("engine: pair cube needs two distinct attributes, got (%d,%d)", attrs[0], attrs[1])
			}
			c, err = e.Cube2(ctx, attrs[0], attrs[1])
		}
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	if len(ndReqs) > 0 {
		nd, err := e.ndSource()
		if err != nil {
			return nil, err
		}
		cubes, err := nd.Cubes(ctx, ndReqs)
		if err != nil {
			return nil, err
		}
		for j, pos := range ndPos {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out[pos] = cubes[j]
		}
	}
	return out, nil
}

// normalizeAttrs validates and defaults a source attribute list the
// same way rulecube.BuildStoreContext does: nil means every non-class
// attribute; explicit lists must not contain the class or duplicates.
func normalizeAttrs(ds *dataset.Dataset, attrs []int) ([]int, error) {
	if attrs == nil {
		for a := 0; a < ds.NumAttrs(); a++ {
			if a != ds.ClassIndex() {
				attrs = append(attrs, a)
			}
		}
		return attrs, nil
	}
	attrs = append([]int(nil), attrs...)
	seen := make(map[int]bool, len(attrs))
	for _, a := range attrs {
		if a < 0 || a >= ds.NumAttrs() {
			return nil, fmt.Errorf("engine: attribute index %d out of range", a)
		}
		if a == ds.ClassIndex() {
			return nil, fmt.Errorf("engine: class attribute in source attribute list")
		}
		if seen[a] {
			return nil, fmt.Errorf("engine: duplicate attribute %d", a)
		}
		seen[a] = true
	}
	sort.Ints(attrs)
	return attrs, nil
}
