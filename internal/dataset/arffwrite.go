package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"opmap/internal/atomicfile"
)

// WriteARFF writes the dataset as a Weka ARFF relation, the round-trip
// complement of ReadARFF. Nominal domains come from the dictionaries in
// code order; names and values containing ARFF-special characters are
// single-quoted with embedded quotes escaped.
func WriteARFF(w io.Writer, ds *Dataset, relation string) error {
	bw := bufio.NewWriter(w)
	if relation == "" {
		relation = "opmap"
	}
	fmt.Fprintf(bw, "@relation %s\n\n", quoteARFF(relation))
	for i := 0; i < ds.NumAttrs(); i++ {
		a := ds.Attr(i)
		if a.Kind == Continuous {
			fmt.Fprintf(bw, "@attribute %s numeric\n", quoteARFF(a.Name))
			continue
		}
		labels := ds.Column(i).Dict.Labels()
		quoted := make([]string, len(labels))
		for j, l := range labels {
			quoted[j] = quoteARFF(l)
		}
		fmt.Fprintf(bw, "@attribute %s {%s}\n", quoteARFF(a.Name), strings.Join(quoted, ","))
	}
	fmt.Fprint(bw, "\n@data\n")
	for r := 0; r < ds.NumRows(); r++ {
		for i := 0; i < ds.NumAttrs(); i++ {
			if i > 0 {
				bw.WriteByte(',')
			}
			col := ds.Column(i)
			if col.Kind == Continuous {
				v := col.Values[r]
				if math.IsNaN(v) {
					bw.WriteString(MissingLabel)
				} else {
					bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
				}
				continue
			}
			code := col.Codes[r]
			if code < 0 {
				bw.WriteString(MissingLabel)
			} else {
				bw.WriteString(quoteARFF(col.Dict.Label(code)))
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WriteARFFFile is WriteARFF to a file path, written atomically so a
// crash or full disk mid-export cannot leave a truncated file at the
// destination.
func WriteARFFFile(path string, ds *Dataset, relation string) error {
	return atomicfile.WriteFile(path, func(w io.Writer) error {
		return WriteARFF(w, ds, relation)
	})
}

// quoteARFF single-quotes a token when it contains characters that would
// break ARFF parsing.
func quoteARFF(s string) string {
	if s != "" && !strings.ContainsAny(s, " \t,{}%'\"") {
		return s
	}
	return "'" + strings.ReplaceAll(s, "'", "\\'") + "'"
}
