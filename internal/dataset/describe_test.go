package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestDescribe(t *testing.T) {
	ds := buildSmall(t) // from dataset_test.go: color/size/class with missing values
	p := Describe(ds)
	if p.Rows != 5 {
		t.Errorf("rows = %d", p.Rows)
	}
	if p.ClassAttr != "class" {
		t.Errorf("class attr = %q", p.ClassAttr)
	}
	if p.ClassDist["yes"] != 3 || p.ClassDist["no"] != 2 {
		t.Errorf("class dist = %v", p.ClassDist)
	}
	if math.Abs(p.MajorShare-0.6) > 1e-12 {
		t.Errorf("major share = %v", p.MajorShare)
	}

	var color, size AttrProfile
	for _, a := range p.Attrs {
		switch a.Name {
		case "color":
			color = a
		case "size":
			size = a
		}
	}
	if color.Kind != Categorical || color.Cardinality != 3 {
		t.Errorf("color profile = %+v", color)
	}
	if color.TopValue != "red" || color.TopCount != 2 {
		t.Errorf("color top = %s(%d)", color.TopValue, color.TopCount)
	}
	if color.Missing != 1 {
		t.Errorf("color missing = %d", color.Missing)
	}
	if size.Kind != Continuous {
		t.Fatalf("size kind = %v", size.Kind)
	}
	if size.Min != 1.5 || size.Max != 4.5 {
		t.Errorf("size range [%v,%v]", size.Min, size.Max)
	}
	if size.Missing != 1 {
		t.Errorf("size missing = %d", size.Missing)
	}
	if math.Abs(size.Mean-3) > 1e-12 {
		t.Errorf("size mean = %v", size.Mean)
	}
}

func TestDescribeAllMissingContinuous(t *testing.T) {
	b, _ := NewBuilder(Schema{
		Attrs: []Attribute{
			{Name: "x", Kind: Continuous},
			{Name: "c", Kind: Categorical},
		},
		ClassIndex: 1,
	})
	b.AddRow([]string{"?", "y"})
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := Describe(ds)
	if !math.IsNaN(p.Attrs[0].Min) || !math.IsNaN(p.Attrs[0].Max) {
		t.Error("all-missing continuous should have NaN range")
	}
}

func TestProfileWrite(t *testing.T) {
	ds := buildSmall(t)
	var buf bytes.Buffer
	if err := Describe(ds).Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"5 records", "color", "size", "categorical", "continuous", "class yes"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile output missing %q", want)
		}
	}
}
