package dataset

import (
	"fmt"
	"io"
	"math"
	"sort"

	"opmap/internal/stats"
)

// Profiling: a per-attribute summary of the loaded data, the first thing
// an analyst checks before mining (domain sizes drive cube memory, the
// class skew drives sampling, missing rates drive trust).

// AttrProfile summarizes one attribute.
type AttrProfile struct {
	Name    string
	Kind    Kind
	Missing int64 // records with a missing value

	// Categorical fields.
	Cardinality int
	TopValue    string // most frequent value
	TopCount    int64

	// Continuous fields.
	Min, Max, Mean, StdDev float64
}

// Profile summarizes a dataset.
type Profile struct {
	Rows       int
	Attrs      []AttrProfile
	ClassAttr  string
	ClassDist  map[string]int64
	MajorShare float64 // fraction of the most frequent class
}

// Describe computes the profile of ds.
func Describe(ds *Dataset) Profile {
	p := Profile{
		Rows:      ds.NumRows(),
		ClassAttr: ds.Attr(ds.ClassIndex()).Name,
		ClassDist: make(map[string]int64),
	}
	dist := ds.ClassDistribution()
	var max, total int64
	for c, n := range dist {
		p.ClassDist[ds.ClassDict().Label(int32(c))] = n
		total += n
		if n > max {
			max = n
		}
	}
	if total > 0 {
		p.MajorShare = float64(max) / float64(total)
	}

	for i := 0; i < ds.NumAttrs(); i++ {
		col := ds.Column(i)
		ap := AttrProfile{Name: ds.Attr(i).Name, Kind: col.Kind}
		if col.Kind == Categorical {
			ap.Cardinality = col.Dict.Len()
			counts := make([]int64, col.Dict.Len())
			for _, code := range col.Codes {
				if code < 0 {
					ap.Missing++
					continue
				}
				counts[code]++
			}
			var top int64 = -1
			for v, n := range counts {
				if n > top {
					top = n
					ap.TopValue = col.Dict.Label(int32(v))
					ap.TopCount = n
				}
			}
		} else {
			ap.Min, ap.Max = math.Inf(1), math.Inf(-1)
			var sum, n float64
			for _, v := range col.Values {
				if math.IsNaN(v) {
					ap.Missing++
					continue
				}
				if v < ap.Min {
					ap.Min = v
				}
				if v > ap.Max {
					ap.Max = v
				}
				sum += v
				n++
			}
			if stats.IsZero(n) {
				ap.Min, ap.Max = math.NaN(), math.NaN()
			} else {
				ap.Mean = sum / n
				var ss float64
				for _, v := range col.Values {
					if math.IsNaN(v) {
						continue
					}
					d := v - ap.Mean
					ss += d * d
				}
				ap.StdDev = math.Sqrt(ss / n)
			}
		}
		p.Attrs = append(p.Attrs, ap)
	}
	return p
}

// Write renders the profile as a fixed-width table.
func (p Profile) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%d records, %d attributes, class %q (majority share %.2f%%)\n",
		p.Rows, len(p.Attrs), p.ClassAttr, 100*p.MajorShare); err != nil {
		return err
	}
	labels := make([]string, 0, len(p.ClassDist))
	for l := range p.ClassDist {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return p.ClassDist[labels[i]] > p.ClassDist[labels[j]] })
	for _, l := range labels {
		if _, err := fmt.Fprintf(w, "  class %-28s %d\n", l, p.ClassDist[l]); err != nil {
			return err
		}
	}
	for _, a := range p.Attrs {
		switch a.Kind {
		case Categorical:
			if _, err := fmt.Fprintf(w, "%-28s categorical  card=%-5d top=%s(%d)  missing=%d\n",
				a.Name, a.Cardinality, a.TopValue, a.TopCount, a.Missing); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%-28s continuous   min=%-10.4g max=%-10.4g mean=%-10.4g sd=%-10.4g missing=%d\n",
				a.Name, a.Min, a.Max, a.Mean, a.StdDev, a.Missing); err != nil {
				return err
			}
		}
	}
	return nil
}
