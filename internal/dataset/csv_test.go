package dataset

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

const sampleCSV = `color,size,class
red,1.5,yes
blue,2.5,no
red,3.5,yes
green,?,no
`

func TestReadCSVBasics(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader(sampleCSV), CSVOptions{
		Kinds: map[string]Kind{"size": Continuous},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRows() != 4 {
		t.Fatalf("rows = %d", ds.NumRows())
	}
	if ds.ClassIndex() != 2 {
		t.Errorf("class index = %d, want last column", ds.ClassIndex())
	}
	if ds.Attr(1).Kind != Continuous {
		t.Error("size should be continuous")
	}
	if ds.Label(3, 1) != MissingLabel {
		t.Error("missing value should survive parsing")
	}
}

func TestReadCSVNamedClass(t *testing.T) {
	csv := "class,x\nyes,a\nno,b\n"
	ds, err := ReadCSV(strings.NewReader(csv), CSVOptions{ClassAttr: "class"})
	if err != nil {
		t.Fatal(err)
	}
	if ds.ClassIndex() != 0 {
		t.Errorf("class index = %d, want 0", ds.ClassIndex())
	}
}

func TestReadCSVUnknownClass(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(sampleCSV), CSVOptions{ClassAttr: "nope"}); err == nil {
		t.Error("unknown class attribute should fail")
	}
}

func TestReadCSVSniffing(t *testing.T) {
	// A numeric column with many distinct values sniffs continuous; a
	// numeric column with a tiny domain sniffs categorical.
	var sb strings.Builder
	sb.WriteString("many,few,class\n")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&sb, "%.2f,%d,c%d\n", float64(i)+0.5, i%2, i%2)
	}
	ds, err := ReadCSV(strings.NewReader(sb.String()), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Attr(0).Kind != Continuous {
		t.Error("high-cardinality numeric column should sniff continuous")
	}
	if ds.Attr(1).Kind != Categorical {
		t.Error("low-cardinality numeric column should sniff categorical")
	}
}

func TestReadCSVSniffRespectsOverride(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("many,class\n")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&sb, "%.2f,c%d\n", float64(i)+0.5, i%2)
	}
	ds, err := ReadCSV(strings.NewReader(sb.String()), CSVOptions{
		Kinds: map[string]Kind{"many": Categorical},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Attr(0).Kind != Categorical {
		t.Error("explicit Kinds override must win over sniffing")
	}
}

func TestReadCSVRaggedRow(t *testing.T) {
	csv := "a,b,class\nx,y\n"
	if _, err := ReadCSV(strings.NewReader(csv), CSVOptions{}); err == nil {
		t.Error("ragged row should fail")
	}
}

func TestReadCSVEmptyInput(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), CSVOptions{}); err == nil {
		t.Error("empty input should fail (no header)")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader(sampleCSV), CSVOptions{
		Kinds: map[string]Kind{"size": Continuous},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()), CSVOptions{
		Kinds: map[string]Kind{"size": Continuous},
	})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != ds.NumRows() {
		t.Fatalf("round trip rows %d != %d", back.NumRows(), ds.NumRows())
	}
	for r := 0; r < ds.NumRows(); r++ {
		for a := 0; a < ds.NumAttrs(); a++ {
			if ds.Label(r, a) != back.Label(r, a) {
				t.Fatalf("cell (%d,%d): %q != %q", r, a, ds.Label(r, a), back.Label(r, a))
			}
		}
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader(sampleCSV), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := WriteCSVFile(path, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(path, CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != ds.NumRows() {
		t.Error("file round trip lost rows")
	}
	if _, err := ReadCSVFile(filepath.Join(t.TempDir(), "missing.csv"), CSVOptions{}); err == nil {
		t.Error("missing file should fail")
	}
}

func TestReadCSVCustomSeparator(t *testing.T) {
	csv := "a;class\nx;yes\n"
	ds, err := ReadCSV(strings.NewReader(csv), CSVOptions{Comma: ';'})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Label(0, 0) != "x" {
		t.Error("semicolon separator not honored")
	}
}
