package dataset

import (
	"fmt"
	"math"
)

// This file gives a built Dataset an append path for streaming
// ingestion. Appends are not safe for use concurrent with reads; the
// Session layer serializes them behind its ingest lock.

// AppendRow appends one row of textual values, one per attribute, with
// exactly Builder.AddRow's semantics: "?" is a missing categorical
// value or continuous NaN, unseen categorical labels register new
// dictionary codes, continuous fields parse as numbers. The row is
// fully validated before anything mutates, so a malformed row leaves
// the dataset untouched.
func (ds *Dataset) AppendRow(values []string) error {
	if len(values) != len(ds.cols) {
		return fmt.Errorf("dataset: row has %d values, schema has %d attributes", len(values), len(ds.cols))
	}
	// Validate pass: parse every continuous field first.
	floats := make([]float64, len(values))
	for i := range ds.cols {
		if ds.cols[i].Kind != Continuous {
			continue
		}
		v := values[i]
		if v == MissingLabel || v == "" {
			floats[i] = math.NaN()
			continue
		}
		if _, err := fmt.Sscanf(v, "%g", &floats[i]); err != nil {
			return fmt.Errorf("dataset: attribute %q: cannot parse %q as number: %v", ds.schema.Attrs[i].Name, v, err)
		}
	}
	// Mutate pass: nothing below can fail.
	for i := range ds.cols {
		c := &ds.cols[i]
		if c.Kind == Categorical {
			if values[i] == MissingLabel {
				c.Codes = append(c.Codes, Missing)
			} else {
				c.Codes = append(c.Codes, c.Dict.Code(values[i]))
			}
			continue
		}
		c.Values = append(c.Values, floats[i])
	}
	ds.rows++
	return nil
}

// AppendCodedRow appends a row of pre-encoded values: codes[i] is used
// for categorical attributes, values[i] for continuous ones (values may
// be nil when every attribute is categorical). Codes must already be
// registered — this path never grows a dictionary, so the caller
// controls exactly when domains change.
func (ds *Dataset) AppendCodedRow(codes []int32, values []float64) error {
	if len(codes) != len(ds.cols) || (values != nil && len(values) != len(ds.cols)) {
		return fmt.Errorf("dataset: coded row width mismatch")
	}
	for i := range ds.cols {
		c := &ds.cols[i]
		if c.Kind == Categorical {
			code := codes[i]
			if code >= 0 && int(code) >= c.Dict.Len() {
				return fmt.Errorf("dataset: attribute %q: code %d beyond dictionary size %d", ds.schema.Attrs[i].Name, code, c.Dict.Len())
			}
			continue
		}
		if values == nil {
			return fmt.Errorf("dataset: attribute %q is continuous but no values were given", ds.schema.Attrs[i].Name)
		}
	}
	for i := range ds.cols {
		c := &ds.cols[i]
		if c.Kind == Categorical {
			c.Codes = append(c.Codes, codes[i])
		} else {
			c.Values = append(c.Values, values[i])
		}
	}
	ds.rows++
	return nil
}
