package dataset

import "fmt"

// This file implements the dictionary-union layer of shard merging.
// Two shards loaded from different slices of the same logical CSV see
// the same labels in different first-appearance orders, so their codes
// disagree; merging their cubes requires a shared union dictionary and
// a per-shard code remap through it. Union is order-preserving: labels
// already known keep their codes, new labels append in src code order.
// Merging shards in row order therefore reproduces exactly the
// dictionary a single pass over the concatenated rows would build —
// the property the sharded-build oracle tests rely on.

// Union registers every label of src into d, in src code order, and
// returns the code translation: remap[srcCode] = d's code for the same
// label. Labels d already knows keep their existing codes; unseen
// labels append. The remap always has length src.Len(), and a nil src
// yields a nil remap.
func (d *Dictionary) Union(src *Dictionary) []int32 {
	if src == nil {
		return nil
	}
	remap := make([]int32, len(src.labels))
	for i, l := range src.labels {
		remap[i] = d.Code(l)
	}
	return remap
}

// RemapIsIdentity reports whether remap maps every code to itself, the
// case where the two dictionaries already agree on a shared prefix and
// counts can be merged without re-indexing.
func RemapIsIdentity(remap []int32) bool {
	for i, c := range remap {
		if int32(i) != c {
			return false
		}
	}
	return true
}

// Remap carries the per-attribute code translations produced by
// UnionDicts, indexed by dataset attribute index. Continuous attributes
// have no dictionary and carry a nil translation.
type Remap struct {
	attrs [][]int32
}

// Attr returns the code translation for attribute i (nil for
// continuous attributes): translation[srcCode] = dstCode.
func (rm *Remap) Attr(i int) []int32 {
	if rm == nil || i < 0 || i >= len(rm.attrs) {
		return nil
	}
	return rm.attrs[i]
}

// NumAttrs returns the number of attributes the remap covers.
func (rm *Remap) NumAttrs() int {
	if rm == nil {
		return 0
	}
	return len(rm.attrs)
}

// CompatibleSchema checks that src's schema matches ds attribute by
// attribute — same count, same names, same kinds, same class position —
// naming the first offending attribute. This is the precondition for
// any shard merge: cubes from structurally different datasets cannot be
// combined meaningfully.
func (ds *Dataset) CompatibleSchema(src *Dataset) error {
	if src == nil {
		return fmt.Errorf("dataset: merge source is nil")
	}
	if got, want := len(src.schema.Attrs), len(ds.schema.Attrs); got != want {
		return fmt.Errorf("dataset: attribute count mismatch: %d vs %d", got, want)
	}
	for i, a := range ds.schema.Attrs {
		b := src.schema.Attrs[i]
		if a.Name != b.Name {
			return fmt.Errorf("dataset: attribute %d name mismatch: %q vs %q", i, a.Name, b.Name)
		}
		if a.Kind != b.Kind {
			return fmt.Errorf("dataset: attribute %q kind mismatch: %s vs %s", a.Name, a.Kind, b.Kind)
		}
	}
	if ds.schema.ClassIndex != src.schema.ClassIndex {
		return fmt.Errorf("dataset: class attribute position mismatch: %d vs %d", src.schema.ClassIndex, ds.schema.ClassIndex)
	}
	return nil
}

// UnionDicts validates schema compatibility and unions every
// categorical dictionary of src into ds, returning the per-attribute
// code remap. ds's dictionaries grow in place (new labels append in
// src order); src is never modified. The operation is idempotent:
// calling it again with the same src returns the same remap without
// growing anything, so callers may remap cube counts and row codes in
// separate passes.
func (ds *Dataset) UnionDicts(src *Dataset) (*Remap, error) {
	if err := ds.CompatibleSchema(src); err != nil {
		return nil, err
	}
	rm := &Remap{attrs: make([][]int32, len(ds.cols))}
	for i := range ds.cols {
		dst := &ds.cols[i]
		if dst.Kind != Categorical {
			continue
		}
		if dst.Dict == nil || src.cols[i].Dict == nil {
			return nil, fmt.Errorf("dataset: attribute %q has no dictionary", ds.schema.Attrs[i].Name)
		}
		rm.attrs[i] = dst.Dict.Union(src.cols[i].Dict)
	}
	return rm, nil
}

// AppendRemapped appends every row of src to ds, translating
// categorical codes through rm (Missing stays Missing) and copying
// continuous values verbatim. rm must come from a ds.UnionDicts(src)
// call, so every translated code is already registered in ds's
// dictionaries.
func (ds *Dataset) AppendRemapped(src *Dataset, rm *Remap) error {
	if err := ds.CompatibleSchema(src); err != nil {
		return err
	}
	for i := range ds.cols {
		if ds.cols[i].Kind != Categorical {
			continue
		}
		tr := rm.Attr(i)
		if len(tr) < src.cols[i].Dict.Len() {
			return fmt.Errorf("dataset: attribute %q: remap covers %d codes, source dictionary has %d", ds.schema.Attrs[i].Name, len(tr), src.cols[i].Dict.Len())
		}
		for _, tc := range tr {
			if tc < 0 || int(tc) >= ds.cols[i].Dict.Len() {
				return fmt.Errorf("dataset: attribute %q: remapped code %d beyond dictionary size %d", ds.schema.Attrs[i].Name, tc, ds.cols[i].Dict.Len())
			}
		}
	}
	for i := range ds.cols {
		dst := &ds.cols[i]
		srcCol := &src.cols[i]
		if dst.Kind != Categorical {
			dst.Values = append(dst.Values, srcCol.Values...)
			continue
		}
		tr := rm.Attr(i)
		for _, code := range srcCol.Codes {
			if code < 0 {
				dst.Codes = append(dst.Codes, Missing)
				continue
			}
			dst.Codes = append(dst.Codes, tr[code])
		}
	}
	ds.rows += src.rows
	return nil
}
