package dataset

import (
	"fmt"
	"testing"
)

// skewed builds a dataset with a 95/5 class imbalance, like the paper's
// call logs.
func skewed(t *testing.T, n int) *Dataset {
	t.Helper()
	b, err := NewBuilder(Schema{
		Attrs: []Attribute{
			{Name: "x", Kind: Categorical},
			{Name: "class", Kind: Categorical},
		},
		ClassIndex: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		class := "ok"
		if i%20 == 0 {
			class = "fail"
		}
		if err := b.AddRow([]string{fmt.Sprintf("v%d", i%4), class}); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestUnbalancedSampleKeepsMinority(t *testing.T) {
	ds := skewed(t, 2000)
	out, err := UnbalancedSample(ds, SampleOptions{Seed: 1, KeepFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	origDist := ds.ClassDistribution()
	newDist := out.ClassDistribution()
	failCode, _ := ds.ClassDict().Lookup("fail")
	okCode, _ := ds.ClassDict().Lookup("ok")
	if newDist[failCode] != origDist[failCode] {
		t.Errorf("minority class changed: %d -> %d", origDist[failCode], newDist[failCode])
	}
	kept := float64(newDist[okCode]) / float64(origDist[okCode])
	if kept < 0.05 || kept > 0.2 {
		t.Errorf("majority keep fraction %.3f, want ≈0.1", kept)
	}
	// The minority share must have increased.
	before := float64(origDist[failCode]) / float64(ds.NumRows())
	after := float64(newDist[failCode]) / float64(out.NumRows())
	if after <= before {
		t.Errorf("minority share did not increase: %.3f -> %.3f", before, after)
	}
}

func TestUnbalancedSampleNamedClass(t *testing.T) {
	ds := skewed(t, 400)
	out, err := UnbalancedSample(ds, SampleOptions{Seed: 1, MajorityClass: "fail", KeepFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	okCode, _ := ds.ClassDict().Lookup("ok")
	if out.ClassDistribution()[okCode] != ds.ClassDistribution()[okCode] {
		t.Error("ok class should be untouched when fail is named majority")
	}
	if _, err := UnbalancedSample(ds, SampleOptions{Seed: 1, MajorityClass: "nope", KeepFraction: 0.5}); err == nil {
		t.Error("unknown class should fail")
	}
	if _, err := UnbalancedSample(ds, SampleOptions{Seed: 1, KeepFraction: 0}); err == nil {
		t.Error("zero fraction should fail")
	}
	if _, err := UnbalancedSample(ds, SampleOptions{Seed: 1, KeepFraction: 1.5}); err == nil {
		t.Error("fraction > 1 should fail")
	}
}

func TestUnbalancedSampleDeterministic(t *testing.T) {
	ds := skewed(t, 1000)
	a, err := UnbalancedSample(ds, SampleOptions{Seed: 7, KeepFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := UnbalancedSample(ds, SampleOptions{Seed: 7, KeepFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != b.NumRows() {
		t.Error("same seed should give the same sample")
	}
}

func TestStratifiedSample(t *testing.T) {
	ds := skewed(t, 4000)
	out, err := StratifiedSample(ds, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(out.NumRows()) / float64(ds.NumRows())
	if frac < 0.2 || frac > 0.3 {
		t.Errorf("sample fraction %.3f, want ≈0.25", frac)
	}
	if _, err := StratifiedSample(ds, 0, 3); err == nil {
		t.Error("zero fraction should fail")
	}
	// Non-empty dataset never samples to zero rows.
	tiny := skewed(t, 3)
	s, err := StratifiedSample(tiny, 0.0001, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRows() == 0 {
		t.Error("sample collapsed to zero rows")
	}
}

func TestShuffle(t *testing.T) {
	ds := skewed(t, 100)
	sh := Shuffle(ds, 42)
	if sh.NumRows() != ds.NumRows() {
		t.Fatal("shuffle changed row count")
	}
	// Same multiset of classes.
	a, b := ds.ClassDistribution(), sh.ClassDistribution()
	for c := range a {
		if a[c] != b[c] {
			t.Errorf("class %d count changed", c)
		}
	}
	// Some row moved (overwhelmingly likely for n=100).
	moved := false
	for r := 0; r < ds.NumRows(); r++ {
		if ds.Label(r, 0) != sh.Label(r, 0) {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("shuffle left every row in place")
	}
}

func TestSplit(t *testing.T) {
	ds := skewed(t, 1000)
	a, b, err := Split(ds, 0.7, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRows()+b.NumRows() != ds.NumRows() {
		t.Error("split lost rows")
	}
	frac := float64(a.NumRows()) / float64(ds.NumRows())
	if frac < 0.6 || frac > 0.8 {
		t.Errorf("split fraction %.3f, want ≈0.7", frac)
	}
	if _, _, err := Split(ds, -0.1, 1); err == nil {
		t.Error("negative fraction should fail")
	}
}
