package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// ARFF support. Weka's Attribute-Relation File Format was the lingua
// franca of 2000s classification research; a toolkit reproducing a 2009
// mining system should ingest the datasets of its era directly.
// Supported: @relation, @attribute with nominal domains or
// numeric/real/integer types, @data with comma-separated rows, '?'
// missing values, quoted nominal values, and %-comments. Sparse rows
// ({i v, ...}) and date/string attributes are rejected explicitly.

// ReadARFF parses an ARFF stream into a Dataset. classAttr names the
// class attribute; empty means the last declared attribute (Weka's
// convention).
func ReadARFF(r io.Reader, classAttr string) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)

	var attrs []Attribute
	var domains []*Dictionary // nil for continuous attributes
	inData := false
	var b *Builder
	lineNo := 0

	finishHeader := func() error {
		if len(attrs) == 0 {
			return fmt.Errorf("dataset: ARFF has no @attribute declarations")
		}
		classIdx := len(attrs) - 1
		if classAttr != "" {
			classIdx = -1
			for i, a := range attrs {
				if strings.EqualFold(a.Name, classAttr) {
					classIdx = i
					break
				}
			}
			if classIdx < 0 {
				return fmt.Errorf("dataset: class attribute %q not declared", classAttr)
			}
		}
		if attrs[classIdx].Kind != Categorical {
			return fmt.Errorf("dataset: class attribute %q must be nominal", attrs[classIdx].Name)
		}
		var err error
		b, err = NewBuilder(Schema{Attrs: attrs, ClassIndex: classIdx})
		if err != nil {
			return err
		}
		for i, d := range domains {
			if d != nil {
				b.WithDict(i, d)
			}
		}
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if !inData {
			lower := strings.ToLower(line)
			switch {
			case strings.HasPrefix(lower, "@relation"):
				// Name only; ignored.
			case strings.HasPrefix(lower, "@attribute"):
				attr, dict, err := parseARFFAttribute(line)
				if err != nil {
					return nil, fmt.Errorf("dataset: ARFF line %d: %w", lineNo, err)
				}
				attrs = append(attrs, attr)
				domains = append(domains, dict)
			case strings.HasPrefix(lower, "@data"):
				if err := finishHeader(); err != nil {
					return nil, err
				}
				inData = true
			default:
				return nil, fmt.Errorf("dataset: ARFF line %d: unexpected header line %q", lineNo, line)
			}
			continue
		}
		if strings.HasPrefix(line, "{") {
			return nil, fmt.Errorf("dataset: ARFF line %d: sparse rows are not supported", lineNo)
		}
		fields, err := splitARFFRow(line)
		if err != nil {
			return nil, fmt.Errorf("dataset: ARFF line %d: %w", lineNo, err)
		}
		if len(fields) != len(attrs) {
			return nil, fmt.Errorf("dataset: ARFF line %d: %d values for %d attributes", lineNo, len(fields), len(attrs))
		}
		// Validate nominal values against their declared domains.
		for i, f := range fields {
			if f == MissingLabel || domains[i] == nil {
				continue
			}
			if _, ok := domains[i].Lookup(f); !ok {
				return nil, fmt.Errorf("dataset: ARFF line %d: value %q not in the domain of %q", lineNo, f, attrs[i].Name)
			}
		}
		if err := b.AddRow(fields); err != nil {
			return nil, fmt.Errorf("dataset: ARFF line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !inData {
		return nil, fmt.Errorf("dataset: ARFF has no @data section")
	}
	return b.Build()
}

// ReadARFFFile is ReadARFF over a file path.
func ReadARFFFile(path, classAttr string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadARFF(f, classAttr)
}

// parseARFFAttribute parses "@attribute name {a,b,c}" or
// "@attribute name numeric".
func parseARFFAttribute(line string) (Attribute, *Dictionary, error) {
	rest := strings.TrimSpace(line[len("@attribute"):])
	if rest == "" {
		return Attribute{}, nil, fmt.Errorf("empty @attribute declaration")
	}
	var name string
	if rest[0] == '\'' || rest[0] == '"' {
		quote := rest[0]
		end := strings.IndexByte(rest[1:], quote)
		if end < 0 {
			return Attribute{}, nil, fmt.Errorf("unterminated quoted attribute name")
		}
		name = rest[1 : 1+end]
		rest = strings.TrimSpace(rest[2+end:])
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return Attribute{}, nil, fmt.Errorf("attribute %q has no type", rest)
		}
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp:])
	}
	if name == "" {
		return Attribute{}, nil, fmt.Errorf("empty attribute name")
	}
	if strings.HasPrefix(rest, "{") {
		if !strings.HasSuffix(rest, "}") {
			return Attribute{}, nil, fmt.Errorf("attribute %q: unterminated nominal domain", name)
		}
		inner := rest[1 : len(rest)-1]
		values, err := splitARFFRow(inner)
		if err != nil {
			return Attribute{}, nil, fmt.Errorf("attribute %q: %w", name, err)
		}
		dict := NewDictionary()
		for _, v := range values {
			if v == "" {
				return Attribute{}, nil, fmt.Errorf("attribute %q: empty nominal value", name)
			}
			dict.Code(v)
		}
		if dict.Len() == 0 {
			return Attribute{}, nil, fmt.Errorf("attribute %q: empty nominal domain", name)
		}
		return Attribute{Name: name, Kind: Categorical}, dict, nil
	}
	switch strings.ToLower(rest) {
	case "numeric", "real", "integer":
		return Attribute{Name: name, Kind: Continuous}, nil, nil
	default:
		return Attribute{}, nil, fmt.Errorf("attribute %q: unsupported type %q (numeric and nominal only)", name, rest)
	}
}

// splitARFFRow splits a comma-separated ARFF row honoring single and
// double quotes.
func splitARFFRow(line string) ([]string, error) {
	var out []string
	var cur strings.Builder
	inQuote := byte(0)
	flush := func() {
		out = append(out, strings.TrimSpace(cur.String()))
		cur.Reset()
	}
	for i := 0; i < len(line); i++ {
		ch := line[i]
		switch {
		case inQuote != 0:
			if ch == '\\' && i+1 < len(line) {
				// Weka-style backslash escape inside quotes.
				i++
				cur.WriteByte(line[i])
			} else if ch == inQuote {
				inQuote = 0
			} else {
				cur.WriteByte(ch)
			}
		case ch == '\'' || ch == '"':
			inQuote = ch
		case ch == ',':
			flush()
		default:
			cur.WriteByte(ch)
		}
	}
	if inQuote != 0 {
		return nil, fmt.Errorf("unterminated quote")
	}
	flush()
	return out, nil
}
