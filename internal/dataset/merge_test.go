package dataset

import (
	"reflect"
	"strings"
	"testing"
)

func TestDictionaryUnion(t *testing.T) {
	dst := DictionaryOf("a", "b", "c")
	src := DictionaryOf("c", "x", "a")
	remap := dst.Union(src)
	if want := []int32{2, 3, 0}; !reflect.DeepEqual(remap, want) {
		t.Fatalf("remap = %v, want %v", remap, want)
	}
	if want := []string{"a", "b", "c", "x"}; !reflect.DeepEqual(dst.Labels(), want) {
		t.Fatalf("labels = %v, want %v", dst.Labels(), want)
	}
	// src untouched.
	if want := []string{"c", "x", "a"}; !reflect.DeepEqual(src.Labels(), want) {
		t.Fatalf("src labels mutated: %v", src.Labels())
	}
	// Idempotent: a second union returns the same remap without growth.
	again := dst.Union(src)
	if !reflect.DeepEqual(again, remap) {
		t.Fatalf("second union remap = %v, want %v", again, remap)
	}
	if dst.Len() != 4 {
		t.Fatalf("second union grew dictionary to %d", dst.Len())
	}
}

func TestDictionaryUnionNilAndEmpty(t *testing.T) {
	dst := DictionaryOf("a")
	if rm := dst.Union(nil); rm != nil {
		t.Fatalf("nil src remap = %v", rm)
	}
	if rm := dst.Union(NewDictionary()); len(rm) != 0 {
		t.Fatalf("empty src remap = %v", rm)
	}
}

func TestRemapIsIdentity(t *testing.T) {
	if !RemapIsIdentity(nil) {
		t.Fatal("nil remap should be identity")
	}
	if !RemapIsIdentity([]int32{0, 1, 2}) {
		t.Fatal("0,1,2 should be identity")
	}
	if RemapIsIdentity([]int32{0, 2, 1}) {
		t.Fatal("0,2,1 should not be identity")
	}
}

// mergeTestDataset builds a small two-attribute categorical dataset
// from textual rows "val,class".
func mergeTestDataset(t *testing.T, rows ...string) *Dataset {
	t.Helper()
	b, err := NewBuilder(Schema{
		Attrs:      []Attribute{{Name: "v", Kind: Categorical}, {Name: "class", Kind: Categorical}},
		ClassIndex: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := b.AddRow(strings.Split(r, ",")); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestUnionDictsAndAppendRemapped(t *testing.T) {
	dst := mergeTestDataset(t, "a,yes", "b,no")
	src := mergeTestDataset(t, "c,no", "a,maybe", "?,yes")
	rm, err := dst.UnionDicts(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := rm.Attr(0); !reflect.DeepEqual(got, []int32{2, 0}) {
		t.Fatalf("attr 0 remap = %v", got)
	}
	if got := rm.Attr(1); !reflect.DeepEqual(got, []int32{1, 2, 0}) {
		t.Fatalf("class remap = %v", got)
	}
	if err := dst.AppendRemapped(src, rm); err != nil {
		t.Fatal(err)
	}
	if dst.NumRows() != 5 {
		t.Fatalf("rows = %d, want 5", dst.NumRows())
	}
	// The merged dataset must equal the single-pass build over the
	// concatenated rows.
	want := mergeTestDataset(t, "a,yes", "b,no", "c,no", "a,maybe", "?,yes")
	if !reflect.DeepEqual(dst, want) {
		t.Fatalf("merged dataset differs from single-pass build:\n got %+v\nwant %+v", dst, want)
	}
}

func TestUnionDictsSchemaErrors(t *testing.T) {
	base := mergeTestDataset(t, "a,yes")
	t.Run("nil source", func(t *testing.T) {
		if _, err := base.UnionDicts(nil); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("attribute count", func(t *testing.T) {
		b, _ := NewBuilder(Schema{Attrs: []Attribute{{Name: "class", Kind: Categorical}}, ClassIndex: 0})
		one, _ := b.Build()
		if _, err := base.UnionDicts(one); err == nil || !strings.Contains(err.Error(), "attribute count") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("name mismatch names attribute", func(t *testing.T) {
		b, _ := NewBuilder(Schema{
			Attrs:      []Attribute{{Name: "w", Kind: Categorical}, {Name: "class", Kind: Categorical}},
			ClassIndex: 1,
		})
		other, _ := b.Build()
		_, err := base.UnionDicts(other)
		if err == nil || !strings.Contains(err.Error(), `"v"`) {
			t.Fatalf("err = %v, want mention of attribute \"v\"", err)
		}
	})
	t.Run("kind mismatch names attribute", func(t *testing.T) {
		b, _ := NewBuilder(Schema{
			Attrs:      []Attribute{{Name: "v", Kind: Continuous}, {Name: "class", Kind: Categorical}},
			ClassIndex: 1,
		})
		other, _ := b.Build()
		_, err := base.UnionDicts(other)
		if err == nil || !strings.Contains(err.Error(), `"v"`) || !strings.Contains(err.Error(), "kind") {
			t.Fatalf("err = %v, want kind mismatch naming \"v\"", err)
		}
	})
}

func TestAppendRemappedContinuous(t *testing.T) {
	build := func(vals ...string) *Dataset {
		b, err := NewBuilder(Schema{
			Attrs:      []Attribute{{Name: "x", Kind: Continuous}, {Name: "class", Kind: Categorical}},
			ClassIndex: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vals {
			if err := b.AddRow(strings.Split(v, ",")); err != nil {
				t.Fatal(err)
			}
		}
		ds, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	// No missing continuous values here: NaN is never DeepEqual to NaN,
	// and missing-value append is covered by the categorical tests.
	dst := build("1.5,yes")
	src := build("2.5,no", "3.5,yes")
	rm, err := dst.UnionDicts(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.AppendRemapped(src, rm); err != nil {
		t.Fatal(err)
	}
	want := build("1.5,yes", "2.5,no", "3.5,yes")
	if !reflect.DeepEqual(dst, want) {
		t.Fatalf("merged continuous dataset differs:\n got %+v\nwant %+v", dst, want)
	}
}
