// Package dataset implements the columnar in-memory classification
// dataset the Opportunity Map system operates on. Datasets are typical
// supervised-learning tables (Section III.A of the paper): a set of
// attributes, one of which is the categorical class attribute. Categorical
// columns are dictionary-encoded as dense int32 codes; continuous columns
// are stored as float64 and must be discretized (package discretize)
// before rules or cubes can be built over them.
package dataset

import (
	"fmt"
	"math"
	"sort"
)

// Kind classifies an attribute as categorical or continuous.
type Kind uint8

const (
	// Categorical attributes take values from a finite domain and are
	// dictionary-encoded.
	Categorical Kind = iota
	// Continuous attributes are real-valued and must be discretized
	// before mining.
	Continuous
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Categorical:
		return "categorical"
	case Continuous:
		return "continuous"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Missing is the code used for a missing categorical value.
const Missing int32 = -1

// MissingLabel is the textual representation of a missing value in CSV
// input and output.
const MissingLabel = "?"

// Attribute describes one column of a dataset.
type Attribute struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of attributes plus the index of the class
// attribute. The class attribute must be categorical.
type Schema struct {
	Attrs      []Attribute
	ClassIndex int
}

// Validate checks structural invariants of the schema.
func (s Schema) Validate() error {
	if len(s.Attrs) == 0 {
		return fmt.Errorf("dataset: schema has no attributes")
	}
	if s.ClassIndex < 0 || s.ClassIndex >= len(s.Attrs) {
		return fmt.Errorf("dataset: class index %d out of range [0,%d)", s.ClassIndex, len(s.Attrs))
	}
	if s.Attrs[s.ClassIndex].Kind != Categorical {
		return fmt.Errorf("dataset: class attribute %q must be categorical", s.Attrs[s.ClassIndex].Name)
	}
	seen := make(map[string]struct{}, len(s.Attrs))
	for i, a := range s.Attrs {
		if a.Name == "" {
			return fmt.Errorf("dataset: attribute %d has empty name", i)
		}
		if _, dup := seen[a.Name]; dup {
			return fmt.Errorf("dataset: duplicate attribute name %q", a.Name)
		}
		seen[a.Name] = struct{}{}
	}
	return nil
}

// AttrIndex returns the index of the attribute with the given name, or
// -1 if there is no such attribute.
func (s Schema) AttrIndex(name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Dictionary maps between categorical value labels and dense codes.
type Dictionary struct {
	labels []string
	codes  map[string]int32
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{codes: make(map[string]int32)}
}

// DictionaryOf builds a dictionary with the given labels pre-registered
// in order.
func DictionaryOf(labels ...string) *Dictionary {
	d := NewDictionary()
	for _, l := range labels {
		d.Code(l)
	}
	return d
}

// Code returns the code for label, registering it if unseen.
func (d *Dictionary) Code(label string) int32 {
	if c, ok := d.codes[label]; ok {
		return c
	}
	c := int32(len(d.labels))
	d.labels = append(d.labels, label)
	d.codes[label] = c
	return c
}

// Lookup returns the code for label without registering it.
func (d *Dictionary) Lookup(label string) (int32, bool) {
	c, ok := d.codes[label]
	return c, ok
}

// Label returns the label for a code. Missing and out-of-range codes
// yield MissingLabel.
func (d *Dictionary) Label(code int32) string {
	if code < 0 || int(code) >= len(d.labels) {
		return MissingLabel
	}
	return d.labels[code]
}

// Len returns the number of distinct registered labels.
func (d *Dictionary) Len() int { return len(d.labels) }

// Labels returns a copy of all labels in code order.
func (d *Dictionary) Labels() []string {
	out := make([]string, len(d.labels))
	copy(out, d.labels)
	return out
}

// Clone returns a deep copy of the dictionary.
func (d *Dictionary) Clone() *Dictionary {
	nd := &Dictionary{
		labels: make([]string, len(d.labels)),
		codes:  make(map[string]int32, len(d.codes)),
	}
	copy(nd.labels, d.labels)
	for k, v := range d.codes {
		nd.codes[k] = v
	}
	return nd
}

// Column is the storage for one attribute. Exactly one of Codes/Values
// is non-nil depending on the attribute kind.
type Column struct {
	Kind   Kind
	Codes  []int32   // categorical codes, Missing for absent values
	Values []float64 // continuous values, NaN for absent values
	Dict   *Dictionary
}

// Len returns the number of rows stored in the column.
func (c *Column) Len() int {
	if c.Kind == Categorical {
		return len(c.Codes)
	}
	return len(c.Values)
}

// Dataset is a columnar table with a schema. All columns have the same
// length. The zero value is not usable; construct datasets with a
// Builder, ReadCSV, or the workload generator.
type Dataset struct {
	schema Schema
	cols   []Column
	rows   int
}

// Schema returns the dataset schema. The returned value shares the
// attribute slice; callers must not modify it.
func (ds *Dataset) Schema() Schema { return ds.schema }

// NumRows returns the number of records.
func (ds *Dataset) NumRows() int { return ds.rows }

// NumAttrs returns the number of attributes including the class.
func (ds *Dataset) NumAttrs() int { return len(ds.schema.Attrs) }

// ClassIndex returns the index of the class attribute.
func (ds *Dataset) ClassIndex() int { return ds.schema.ClassIndex }

// ClassDict returns the dictionary of the class attribute.
func (ds *Dataset) ClassDict() *Dictionary { return ds.cols[ds.schema.ClassIndex].Dict }

// NumClasses returns the number of distinct class labels.
func (ds *Dataset) NumClasses() int { return ds.ClassDict().Len() }

// Column returns the storage of attribute i. The caller must not modify
// the returned slices.
func (ds *Dataset) Column(i int) *Column { return &ds.cols[i] }

// AttrIndex returns the index of the named attribute or -1.
func (ds *Dataset) AttrIndex(name string) int { return ds.schema.AttrIndex(name) }

// Attr returns the attribute descriptor at index i.
func (ds *Dataset) Attr(i int) Attribute { return ds.schema.Attrs[i] }

// Cardinality returns the number of distinct values of categorical
// attribute i (0 for continuous attributes).
func (ds *Dataset) Cardinality(i int) int {
	c := &ds.cols[i]
	if c.Kind != Categorical || c.Dict == nil {
		return 0
	}
	return c.Dict.Len()
}

// CatCode returns the categorical code at (row, attr). It panics if the
// attribute is continuous — callers are expected to have discretized.
func (ds *Dataset) CatCode(row, attr int) int32 {
	c := &ds.cols[attr]
	if c.Kind != Categorical {
		panic(fmt.Sprintf("dataset: attribute %q is continuous; discretize before categorical access", ds.schema.Attrs[attr].Name))
	}
	return c.Codes[row]
}

// ContValue returns the continuous value at (row, attr). It panics for
// categorical attributes.
func (ds *Dataset) ContValue(row, attr int) float64 {
	c := &ds.cols[attr]
	if c.Kind != Continuous {
		panic(fmt.Sprintf("dataset: attribute %q is categorical", ds.schema.Attrs[attr].Name))
	}
	return c.Values[row]
}

// Label returns the textual value at (row, attr) for either kind.
func (ds *Dataset) Label(row, attr int) string {
	c := &ds.cols[attr]
	if c.Kind == Categorical {
		return c.Dict.Label(c.Codes[row])
	}
	v := c.Values[row]
	if math.IsNaN(v) {
		return MissingLabel
	}
	return fmt.Sprintf("%g", v)
}

// ClassCode returns the class code of a row.
func (ds *Dataset) ClassCode(row int) int32 {
	return ds.cols[ds.schema.ClassIndex].Codes[row]
}

// AllCategorical reports whether every attribute is categorical (the
// precondition for rule mining and cube construction).
func (ds *Dataset) AllCategorical() bool {
	for _, c := range ds.cols {
		if c.Kind != Categorical {
			return false
		}
	}
	return true
}

// ClassDistribution returns the count of each class code.
func (ds *Dataset) ClassDistribution() []int64 {
	counts := make([]int64, ds.NumClasses())
	col := ds.cols[ds.schema.ClassIndex].Codes
	for _, c := range col {
		if c >= 0 && int(c) < len(counts) {
			counts[c]++
		}
	}
	return counts
}

// ValueCounts returns, for categorical attribute attr, the count of each
// value code (missing values are not counted).
func (ds *Dataset) ValueCounts(attr int) ([]int64, error) {
	c := &ds.cols[attr]
	if c.Kind != Categorical {
		return nil, fmt.Errorf("dataset: ValueCounts on continuous attribute %q", ds.schema.Attrs[attr].Name)
	}
	counts := make([]int64, c.Dict.Len())
	for _, code := range c.Codes {
		if code >= 0 && int(code) < len(counts) {
			counts[code]++
		}
	}
	return counts, nil
}

// Filter returns a new dataset containing only the rows for which keep
// returns true. Dictionaries are shared with the source (codes keep
// their meaning), so the result is cheap relative to the retained rows.
func (ds *Dataset) Filter(keep func(row int) bool) *Dataset {
	var idx []int
	for r := 0; r < ds.rows; r++ {
		if keep(r) {
			idx = append(idx, r)
		}
	}
	return ds.Gather(idx)
}

// Gather returns a new dataset made of the given row indices, in order.
// Indices may repeat (used by the Fig. 11 duplication protocol and by
// bootstrap-style sampling).
func (ds *Dataset) Gather(rows []int) *Dataset {
	out := &Dataset{schema: ds.schema, rows: len(rows)}
	out.cols = make([]Column, len(ds.cols))
	for i := range ds.cols {
		src := &ds.cols[i]
		dst := &out.cols[i]
		dst.Kind = src.Kind
		dst.Dict = src.Dict
		if src.Kind == Categorical {
			dst.Codes = make([]int32, len(rows))
			for j, r := range rows {
				dst.Codes[j] = src.Codes[r]
			}
		} else {
			dst.Values = make([]float64, len(rows))
			for j, r := range rows {
				dst.Values[j] = src.Values[r]
			}
		}
	}
	return out
}

// SelectAttrs returns a dataset restricted to the given attribute
// indices. The class attribute is always retained and its position in
// the result is recomputed. Column storage is shared with the source.
func (ds *Dataset) SelectAttrs(attrs []int) (*Dataset, error) {
	hasClass := false
	for _, a := range attrs {
		if a < 0 || a >= len(ds.cols) {
			return nil, fmt.Errorf("dataset: attribute index %d out of range", a)
		}
		if a == ds.schema.ClassIndex {
			hasClass = true
		}
	}
	sel := attrs
	if !hasClass {
		sel = append(append([]int{}, attrs...), ds.schema.ClassIndex)
	}
	out := &Dataset{rows: ds.rows}
	out.schema.Attrs = make([]Attribute, len(sel))
	out.cols = make([]Column, len(sel))
	for i, a := range sel {
		out.schema.Attrs[i] = ds.schema.Attrs[a]
		out.cols[i] = ds.cols[a]
		if a == ds.schema.ClassIndex {
			out.schema.ClassIndex = i
		}
	}
	return out, nil
}

// Duplicate returns the dataset repeated factor times. The paper's
// Fig. 11 scale-up protocol ("To increase the number of data records, we
// simply duplicate the data set") uses exactly this operation.
func (ds *Dataset) Duplicate(factor int) *Dataset {
	if factor < 1 {
		factor = 1
	}
	idx := make([]int, 0, ds.rows*factor)
	for f := 0; f < factor; f++ {
		for r := 0; r < ds.rows; r++ {
			idx = append(idx, r)
		}
	}
	return ds.Gather(idx)
}

// Row materializes row r as labels, mainly for display and CSV export.
func (ds *Dataset) Row(r int) []string {
	out := make([]string, len(ds.cols))
	for i := range ds.cols {
		out[i] = ds.Label(r, i)
	}
	return out
}

// Builder constructs a Dataset row by row.
type Builder struct {
	schema Schema
	cols   []Column
	rows   int
	err    error
}

// NewBuilder creates a builder for the given schema. Every categorical
// attribute receives a fresh dictionary.
func NewBuilder(schema Schema) (*Builder, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	b := &Builder{schema: schema}
	b.cols = make([]Column, len(schema.Attrs))
	for i, a := range schema.Attrs {
		b.cols[i].Kind = a.Kind
		if a.Kind == Categorical {
			b.cols[i].Dict = NewDictionary()
		}
	}
	return b, nil
}

// WithDict pre-registers a dictionary for categorical attribute i so
// that code order is controlled by the caller (for example to keep
// ordinal attributes like time-of-day in their natural order).
func (b *Builder) WithDict(attr int, dict *Dictionary) *Builder {
	if b.err != nil {
		return b
	}
	if attr < 0 || attr >= len(b.cols) || b.cols[attr].Kind != Categorical {
		b.err = fmt.Errorf("dataset: WithDict: attribute %d is not categorical", attr)
		return b
	}
	b.cols[attr].Dict = dict
	return b
}

// AddRow appends a row of textual values, one per attribute. Missing
// values are written as MissingLabel ("?").
func (b *Builder) AddRow(values []string) error {
	if b.err != nil {
		return b.err
	}
	if len(values) != len(b.cols) {
		b.err = fmt.Errorf("dataset: row has %d values, schema has %d attributes", len(values), len(b.cols))
		return b.err
	}
	for i := range b.cols {
		c := &b.cols[i]
		v := values[i]
		if c.Kind == Categorical {
			if v == MissingLabel {
				c.Codes = append(c.Codes, Missing)
			} else {
				c.Codes = append(c.Codes, c.Dict.Code(v))
			}
			continue
		}
		if v == MissingLabel || v == "" {
			c.Values = append(c.Values, math.NaN())
			continue
		}
		var f float64
		if _, err := fmt.Sscanf(v, "%g", &f); err != nil {
			b.err = fmt.Errorf("dataset: attribute %q: cannot parse %q as number: %v", b.schema.Attrs[i].Name, v, err)
			return b.err
		}
		c.Values = append(c.Values, f)
	}
	b.rows++
	return nil
}

// AddCodedRow appends a row given pre-encoded categorical codes and raw
// continuous values. codes[i] is consulted for categorical attributes,
// values[i] for continuous ones; the other entry is ignored. This is the
// fast path used by the synthetic workload generator.
func (b *Builder) AddCodedRow(codes []int32, values []float64) error {
	if b.err != nil {
		return b.err
	}
	if len(codes) != len(b.cols) || (values != nil && len(values) != len(b.cols)) {
		b.err = fmt.Errorf("dataset: coded row width mismatch")
		return b.err
	}
	for i := range b.cols {
		c := &b.cols[i]
		if c.Kind == Categorical {
			c.Codes = append(c.Codes, codes[i])
		} else {
			c.Values = append(c.Values, values[i])
		}
	}
	b.rows++
	return nil
}

// Build finalizes the dataset. The builder must not be used afterwards.
func (b *Builder) Build() (*Dataset, error) {
	if b.err != nil {
		return nil, b.err
	}
	for i := range b.cols {
		c := &b.cols[i]
		if c.Kind == Categorical {
			for _, code := range c.Codes {
				if code >= 0 && int(code) >= c.Dict.Len() {
					return nil, fmt.Errorf("dataset: attribute %q has code %d beyond dictionary size %d", b.schema.Attrs[i].Name, code, c.Dict.Len())
				}
			}
		}
	}
	ds := &Dataset{schema: b.schema, cols: b.cols, rows: b.rows}
	return ds, nil
}

// SortedValueCodes returns the codes of attribute attr ordered by label,
// useful for deterministic display.
func (ds *Dataset) SortedValueCodes(attr int) []int32 {
	c := &ds.cols[attr]
	if c.Kind != Categorical {
		return nil
	}
	codes := make([]int32, c.Dict.Len())
	for i := range codes {
		codes[i] = int32(i)
	}
	sort.Slice(codes, func(i, j int) bool {
		return c.Dict.Label(codes[i]) < c.Dict.Label(codes[j])
	})
	return codes
}
