package dataset

import (
	"strings"
	"testing"
)

const limitsCSV = "a,b,class\nx,1,yes\ny,2,no\nz,3,yes\n"

func TestReadCSVMaxRows(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(limitsCSV), CSVOptions{MaxRows: 2}); err == nil {
		t.Fatal("MaxRows=2 accepted 3 data rows")
	} else if !strings.Contains(err.Error(), "exceeds 2 data rows") {
		t.Errorf("error %q does not name the row limit", err)
	}
	// The limit counts data rows, not the header: exactly MaxRows is fine.
	ds, err := ReadCSV(strings.NewReader(limitsCSV), CSVOptions{MaxRows: 3})
	if err != nil {
		t.Fatalf("MaxRows=3 rejected a 3-row file: %v", err)
	}
	if ds.NumRows() != 3 {
		t.Errorf("NumRows = %d, want 3", ds.NumRows())
	}
}

func TestReadCSVMaxColumns(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(limitsCSV), CSVOptions{MaxColumns: 2}); err == nil {
		t.Fatal("MaxColumns=2 accepted a 3-column header")
	} else if !strings.Contains(err.Error(), "3 columns, limit is 2") {
		t.Errorf("error %q does not name the column limit", err)
	}
	if _, err := ReadCSV(strings.NewReader(limitsCSV), CSVOptions{MaxColumns: 3}); err != nil {
		t.Fatalf("MaxColumns=3 rejected a 3-column file: %v", err)
	}
}

func TestReadCSVMaxRecordBytes(t *testing.T) {
	wide := "a,b,class\nx," + strings.Repeat("v", 100) + ",yes\ny,2,no\n"
	if _, err := ReadCSV(strings.NewReader(wide), CSVOptions{MaxRecordBytes: 50}); err == nil {
		t.Fatal("MaxRecordBytes=50 accepted a ~100-byte record")
	} else if !strings.Contains(err.Error(), "line 2 exceeds 50 bytes") {
		t.Errorf("error %q does not locate the oversized record", err)
	}
	// The header is subject to the same bound.
	bigHeader := strings.Repeat("h", 100) + ",class\nx,yes\n"
	if _, err := ReadCSV(strings.NewReader(bigHeader), CSVOptions{MaxRecordBytes: 50}); err == nil {
		t.Fatal("MaxRecordBytes=50 accepted a ~100-byte header")
	} else if !strings.Contains(err.Error(), "line 1") {
		t.Errorf("error %q does not point at the header line", err)
	}
}

// TestReadCSVLimitsZeroUnlimited pins the default: zero limits change
// nothing.
func TestReadCSVLimitsZeroUnlimited(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader(limitsCSV), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRows() != 3 || ds.NumAttrs() != 3 {
		t.Errorf("dataset shape = %d rows × %d attrs, want 3×3", ds.NumRows(), ds.NumAttrs())
	}
}
