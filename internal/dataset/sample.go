package dataset

import (
	"fmt"
	"math/rand"
)

// Sampling implements the unbalanced-sampling step the paper applies
// before mining (Section I): failure classes are rare, so successful
// records are down-sampled to raise the failure classes' share while
// keeping every rare-class record.

// SampleOptions configures class-aware sampling.
type SampleOptions struct {
	// Seed drives the deterministic PRNG.
	Seed int64
	// MajorityClass names the class label to down-sample. Empty means the
	// most frequent class.
	MajorityClass string
	// KeepFraction is the fraction of majority-class records retained,
	// in (0, 1]. All other classes are kept in full.
	KeepFraction float64
}

// UnbalancedSample down-samples the majority class per the options,
// returning a new dataset. This reproduces the paper's pre-mining
// rebalancing, "which has been shown to work quite well".
func UnbalancedSample(ds *Dataset, opts SampleOptions) (*Dataset, error) {
	if opts.KeepFraction <= 0 || opts.KeepFraction > 1 {
		return nil, fmt.Errorf("dataset: KeepFraction %v out of (0,1]", opts.KeepFraction)
	}
	dict := ds.ClassDict()
	major := int32(-1)
	if opts.MajorityClass != "" {
		c, ok := dict.Lookup(opts.MajorityClass)
		if !ok {
			return nil, fmt.Errorf("dataset: class %q not found", opts.MajorityClass)
		}
		major = c
	} else {
		dist := ds.ClassDistribution()
		var best int64 = -1
		for c, n := range dist {
			if n > best {
				best = n
				major = int32(c)
			}
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var keep []int
	for r := 0; r < ds.NumRows(); r++ {
		if ds.ClassCode(r) != major || rng.Float64() < opts.KeepFraction {
			keep = append(keep, r)
		}
	}
	return ds.Gather(keep), nil
}

// StratifiedSample keeps approximately fraction of rows from every
// class, preserving the class distribution. Used to shrink huge datasets
// before offline cube generation ("For huge data sets, sampling is
// applied", Section V.C).
func StratifiedSample(ds *Dataset, fraction float64, seed int64) (*Dataset, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("dataset: fraction %v out of (0,1]", fraction)
	}
	rng := rand.New(rand.NewSource(seed))
	var keep []int
	for r := 0; r < ds.NumRows(); r++ {
		if rng.Float64() < fraction {
			keep = append(keep, r)
		}
	}
	if len(keep) == 0 && ds.NumRows() > 0 {
		keep = append(keep, rng.Intn(ds.NumRows()))
	}
	return ds.Gather(keep), nil
}

// Shuffle returns a row-permuted copy of the dataset.
func Shuffle(ds *Dataset, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(ds.NumRows())
	return ds.Gather(idx)
}

// Split partitions the dataset into two parts with the first containing
// approximately fraction of the rows. Deterministic for a given seed.
func Split(ds *Dataset, fraction float64, seed int64) (*Dataset, *Dataset, error) {
	if fraction < 0 || fraction > 1 {
		return nil, nil, fmt.Errorf("dataset: split fraction %v out of [0,1]", fraction)
	}
	rng := rand.New(rand.NewSource(seed))
	var a, b []int
	for r := 0; r < ds.NumRows(); r++ {
		if rng.Float64() < fraction {
			a = append(a, r)
		} else {
			b = append(b, r)
		}
	}
	return ds.Gather(a), ds.Gather(b), nil
}
