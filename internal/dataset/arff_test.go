package dataset

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleARFF = `% The classic toy weather relation.
@relation weather

@attribute outlook {sunny, overcast, rainy}
@attribute temperature numeric
@attribute humidity real
@attribute windy {TRUE, FALSE}
@attribute play {yes, no}

@data
sunny,85,85,FALSE,no
sunny,80,90,TRUE,no
overcast,83,86,FALSE,yes
rainy,70,96,FALSE,yes
rainy,68,80,FALSE,yes
rainy,65,70,TRUE,no
overcast,64,65,TRUE,yes
sunny,72,95,FALSE,no
sunny,69,70,FALSE,yes
rainy,75,80,FALSE,yes
sunny,75,70,TRUE,yes
overcast,72,90,TRUE,yes
overcast,81,75,FALSE,yes
rainy,71,91,TRUE,no
`

func TestReadARFFWeather(t *testing.T) {
	ds, err := ReadARFF(strings.NewReader(sampleARFF), "")
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRows() != 14 {
		t.Fatalf("rows = %d, want 14", ds.NumRows())
	}
	if ds.NumAttrs() != 5 {
		t.Fatalf("attrs = %d", ds.NumAttrs())
	}
	if ds.ClassIndex() != 4 {
		t.Errorf("class index = %d, want last", ds.ClassIndex())
	}
	if ds.Attr(1).Kind != Continuous || ds.Attr(2).Kind != Continuous {
		t.Error("numeric/real attributes should be continuous")
	}
	if ds.Attr(0).Kind != Categorical {
		t.Error("nominal attribute should be categorical")
	}
	// Declared domain order is preserved (sunny=0).
	if ds.Column(0).Dict.Label(0) != "sunny" {
		t.Errorf("first outlook label = %q", ds.Column(0).Dict.Label(0))
	}
	if ds.ContValue(0, 1) != 85 {
		t.Errorf("temperature[0] = %v", ds.ContValue(0, 1))
	}
	dist := ds.ClassDistribution()
	if dist[0]+dist[1] != 14 {
		t.Errorf("class distribution = %v", dist)
	}
}

func TestReadARFFNamedClass(t *testing.T) {
	ds, err := ReadARFF(strings.NewReader(sampleARFF), "outlook")
	if err != nil {
		t.Fatal(err)
	}
	if ds.ClassIndex() != 0 {
		t.Errorf("class index = %d", ds.ClassIndex())
	}
	if _, err := ReadARFF(strings.NewReader(sampleARFF), "nope"); err == nil {
		t.Error("unknown class should fail")
	}
	// Continuous class rejected.
	if _, err := ReadARFF(strings.NewReader(sampleARFF), "temperature"); err == nil {
		t.Error("numeric class should fail")
	}
}

func TestReadARFFMissingAndQuotes(t *testing.T) {
	arff := `@relation t
@attribute 'my attr' {a b, c}
@attribute x numeric
@attribute class {p, n}
@data
'a b',1.5,p
?,?,n
c,2.5,p
`
	ds, err := ReadARFF(strings.NewReader(arff), "")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Attr(0).Name != "my attr" {
		t.Errorf("quoted name = %q", ds.Attr(0).Name)
	}
	if ds.Label(0, 0) != "a b" {
		t.Errorf("quoted nominal value = %q", ds.Label(0, 0))
	}
	if ds.Label(1, 0) != MissingLabel || ds.Label(1, 1) != MissingLabel {
		t.Error("missing values lost")
	}
}

func TestReadARFFValidation(t *testing.T) {
	cases := []struct {
		name string
		arff string
	}{
		{"no data section", "@relation t\n@attribute a {x}\n"},
		{"no attributes", "@relation t\n@data\nx\n"},
		{"undeclared nominal value", "@relation t\n@attribute a {x}\n@attribute c {p}\n@data\ny,p\n"},
		{"width mismatch", "@relation t\n@attribute a {x}\n@attribute c {p}\n@data\nx\n"},
		{"sparse row", "@relation t\n@attribute a {x}\n@attribute c {p}\n@data\n{0 x}\n"},
		{"string type", "@relation t\n@attribute a string\n@attribute c {p}\n@data\nfoo,p\n"},
		{"unterminated domain", "@relation t\n@attribute a {x\n@attribute c {p}\n@data\nx,p\n"},
		{"unterminated quote", "@relation t\n@attribute a {x}\n@attribute c {p}\n@data\n'x,p\n"},
		{"garbage header", "@relation t\nbogus\n@data\n"},
		{"attribute without type", "@relation t\n@attribute lonely\n@data\n"},
	}
	for _, c := range cases {
		if _, err := ReadARFF(strings.NewReader(c.arff), ""); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReadARFFFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "weather.arff")
	if err := writeFile(path, sampleARFF); err != nil {
		t.Fatal(err)
	}
	ds, err := ReadARFFFile(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRows() != 14 {
		t.Error("file read broken")
	}
	if _, err := ReadARFFFile(filepath.Join(t.TempDir(), "missing.arff"), ""); err == nil {
		t.Error("missing file should fail")
	}
}

func TestSplitARFFRow(t *testing.T) {
	fields, err := splitARFFRow(`a, 'b, c' ,"d e",f`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b, c", "d e", "f"}
	if len(fields) != len(want) {
		t.Fatalf("fields = %v", fields)
	}
	for i := range want {
		if fields[i] != want[i] {
			t.Errorf("field %d = %q, want %q", i, fields[i], want[i])
		}
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestARFFRoundTrip(t *testing.T) {
	ds, err := ReadARFF(strings.NewReader(sampleARFF), "")
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteARFF(&buf, ds, "weather"); err != nil {
		t.Fatal(err)
	}
	back, err := ReadARFF(strings.NewReader(buf.String()), "")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != ds.NumRows() || back.NumAttrs() != ds.NumAttrs() {
		t.Fatalf("shape changed: %dx%d vs %dx%d", back.NumRows(), back.NumAttrs(), ds.NumRows(), ds.NumAttrs())
	}
	for r := 0; r < ds.NumRows(); r++ {
		for a := 0; a < ds.NumAttrs(); a++ {
			if ds.Label(r, a) != back.Label(r, a) {
				t.Fatalf("cell (%d,%d): %q != %q", r, a, ds.Label(r, a), back.Label(r, a))
			}
		}
	}
}

func TestARFFRoundTripAwkwardLabels(t *testing.T) {
	b, _ := NewBuilder(Schema{
		Attrs: []Attribute{
			{Name: "odd attr, name", Kind: Categorical},
			{Name: "x", Kind: Continuous},
			{Name: "class", Kind: Categorical},
		},
		ClassIndex: 2,
	})
	rows := [][]string{
		{"has space", "1.5", "it's"},
		{"comma,value", "?", "plain"},
		{"?", "2.25", "it's"},
	}
	for _, r := range rows {
		if err := b.AddRow(r); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteARFF(&buf, ds, "tricky relation"); err != nil {
		t.Fatal(err)
	}
	back, err := ReadARFF(strings.NewReader(buf.String()), "")
	if err != nil {
		t.Fatalf("round trip parse failed:\n%s\n%v", buf.String(), err)
	}
	for r := 0; r < ds.NumRows(); r++ {
		for a := 0; a < ds.NumAttrs(); a++ {
			if ds.Label(r, a) != back.Label(r, a) {
				t.Fatalf("cell (%d,%d): %q != %q", r, a, ds.Label(r, a), back.Label(r, a))
			}
		}
	}
}

func TestWriteARFFFileHelper(t *testing.T) {
	ds, err := ReadARFF(strings.NewReader(sampleARFF), "")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.arff")
	if err := WriteARFFFile(path, ds, ""); err != nil {
		t.Fatal(err)
	}
	back, err := ReadARFFFile(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 14 {
		t.Error("file round trip broken")
	}
}
