package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"opmap/internal/atomicfile"
)

// CSVOptions controls CSV parsing into a Dataset.
type CSVOptions struct {
	// ClassAttr names the class attribute. If empty, the last column is
	// the class.
	ClassAttr string
	// Kinds optionally fixes the kind of each named attribute. Attributes
	// not listed are sniffed: a column whose non-missing values all parse
	// as numbers and which has more than MaxSniffCardinality distinct
	// values is continuous, otherwise categorical.
	Kinds map[string]Kind
	// MaxSniffCardinality is the distinct-value threshold for treating a
	// numeric column as categorical anyway (e.g. small integer codes).
	// Zero means 32.
	MaxSniffCardinality int
	// Comma is the field separator; zero means ','.
	Comma rune
	// MaxRows caps the number of data rows (excluding the header);
	// exceeding it fails the load instead of growing memory without
	// bound. Zero means unlimited (trusted local files).
	MaxRows int
	// MaxColumns caps the number of header columns. Zero means
	// unlimited.
	MaxColumns int
	// MaxRecordBytes caps the byte size of any single record (sum of
	// field lengths, header included). Zero means unlimited.
	MaxRecordBytes int
}

// ReadCSV parses a header-bearing CSV stream into a Dataset.
func ReadCSV(r io.Reader, opts CSVOptions) (*Dataset, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	if opts.MaxColumns > 0 && len(header) > opts.MaxColumns {
		return nil, fmt.Errorf("dataset: CSV header has %d columns, limit is %d", len(header), opts.MaxColumns)
	}
	if err := checkRecordBytes(header, 1, opts.MaxRecordBytes); err != nil {
		return nil, err
	}
	names := make([]string, len(header))
	for i, h := range header {
		names[i] = strings.TrimSpace(h)
	}

	var rows [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV row %d: %w", len(rows)+2, err)
		}
		if opts.MaxRows > 0 && len(rows) >= opts.MaxRows {
			return nil, fmt.Errorf("dataset: CSV exceeds %d data rows", opts.MaxRows)
		}
		if err := checkRecordBytes(rec, len(rows)+2, opts.MaxRecordBytes); err != nil {
			return nil, err
		}
		row := make([]string, len(rec))
		for i, v := range rec {
			row[i] = strings.TrimSpace(v)
		}
		if len(row) != len(names) {
			return nil, fmt.Errorf("dataset: CSV row %d has %d fields, header has %d", len(rows)+2, len(row), len(names))
		}
		rows = append(rows, row)
	}

	classIdx := len(names) - 1
	if opts.ClassAttr != "" {
		classIdx = -1
		for i, n := range names {
			if n == opts.ClassAttr {
				classIdx = i
				break
			}
		}
		if classIdx < 0 {
			return nil, fmt.Errorf("dataset: class attribute %q not found in CSV header", opts.ClassAttr)
		}
	}

	maxCard := opts.MaxSniffCardinality
	if maxCard == 0 {
		maxCard = 32
	}
	attrs := make([]Attribute, len(names))
	for i, n := range names {
		kind := Categorical
		if k, ok := opts.Kinds[n]; ok {
			kind = k
		} else if i != classIdx {
			kind = sniffKind(rows, i, maxCard)
		}
		if i == classIdx {
			kind = Categorical
		}
		attrs[i] = Attribute{Name: n, Kind: kind}
	}

	b, err := NewBuilder(Schema{Attrs: attrs, ClassIndex: classIdx})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		if err := b.AddRow(row); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// checkRecordBytes enforces MaxRecordBytes on one record; line is the
// 1-based CSV line for the error message.
func checkRecordBytes(rec []string, line, limit int) error {
	if limit <= 0 {
		return nil
	}
	n := 0
	for _, f := range rec {
		n += len(f)
		if n > limit {
			return fmt.Errorf("dataset: CSV record at line %d exceeds %d bytes", line, limit)
		}
	}
	return nil
}

// ReadCSVFile is ReadCSV over a file path.
func ReadCSVFile(path string, opts CSVOptions) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, opts)
}

func sniffKind(rows [][]string, col, maxCard int) Kind {
	distinct := make(map[string]struct{})
	numeric := true
	for _, row := range rows {
		v := row[col]
		if v == MissingLabel || v == "" {
			continue
		}
		if numeric {
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				numeric = false
			}
		}
		if len(distinct) <= maxCard {
			distinct[v] = struct{}{}
		}
		if !numeric && len(distinct) > maxCard {
			break
		}
	}
	if numeric && len(distinct) > maxCard {
		return Continuous
	}
	return Categorical
}

// WriteCSV writes the dataset with a header row. Missing values are
// written as MissingLabel.
func WriteCSV(w io.Writer, ds *Dataset) error {
	cw := csv.NewWriter(w)
	header := make([]string, ds.NumAttrs())
	for i := range header {
		header[i] = ds.Attr(i).Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for r := 0; r < ds.NumRows(); r++ {
		if err := cw.Write(ds.Row(r)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile is WriteCSV to a file path, written atomically so a
// crash or full disk mid-export cannot leave a truncated file at the
// destination.
func WriteCSVFile(path string, ds *Dataset) error {
	return atomicfile.WriteFile(path, func(w io.Writer) error {
		return WriteCSV(w, ds)
	})
}
