package dataset

import (
	"strings"
	"testing"
)

// FuzzReadCSV hardens the loader: arbitrary text must either parse into
// a queryable dataset or fail with an error — never panic.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b,class\nx,1.5,yes\ny,2.5,no\n")
	f.Add("class\nyes\n")
	f.Add("")
	f.Add("a,b\n\"unterminated")
	f.Add("a,b,class\n?,?,?\n")
	f.Add("a,a,class\nx,y,z\n") // duplicate attribute names
	f.Fuzz(func(t *testing.T, input string) {
		ds, err := ReadCSV(strings.NewReader(input), CSVOptions{})
		if err != nil {
			return
		}
		// Parsed datasets must answer basic queries.
		_ = ds.ClassDistribution()
		p := Describe(ds)
		if p.Rows != ds.NumRows() {
			t.Fatalf("profile rows %d != dataset rows %d", p.Rows, ds.NumRows())
		}
		for r := 0; r < ds.NumRows() && r < 10; r++ {
			if len(ds.Row(r)) != ds.NumAttrs() {
				t.Fatal("row width mismatch")
			}
		}
	})
}

// FuzzReadARFF hardens the ARFF loader the same way.
func FuzzReadARFF(f *testing.F) {
	f.Add("@relation t\n@attribute a {x,y}\n@attribute c {p,n}\n@data\nx,p\ny,n\n")
	f.Add("@relation t\n@attribute a numeric\n@attribute c {p}\n@data\n1.5,p\n")
	f.Add("@data\n")
	f.Add("@relation t\n@attribute 'q a' {('}\n@data\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		ds, err := ReadARFF(strings.NewReader(input), "")
		if err != nil {
			return
		}
		_ = ds.ClassDistribution()
		_ = Describe(ds)
	})
}
