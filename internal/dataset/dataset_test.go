package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func twoAttrSchema() Schema {
	return Schema{
		Attrs: []Attribute{
			{Name: "color", Kind: Categorical},
			{Name: "size", Kind: Continuous},
			{Name: "class", Kind: Categorical},
		},
		ClassIndex: 2,
	}
}

func buildSmall(t *testing.T) *Dataset {
	t.Helper()
	b, err := NewBuilder(twoAttrSchema())
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]string{
		{"red", "1.5", "yes"},
		{"blue", "2.5", "no"},
		{"red", "3.5", "yes"},
		{"green", "?", "no"},
		{"?", "4.5", "yes"},
	}
	for _, r := range rows {
		if err := b.AddRow(r); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestSchemaValidate(t *testing.T) {
	cases := []struct {
		name   string
		schema Schema
		ok     bool
	}{
		{"valid", twoAttrSchema(), true},
		{"empty", Schema{}, false},
		{"class out of range", Schema{Attrs: []Attribute{{Name: "a", Kind: Categorical}}, ClassIndex: 3}, false},
		{"continuous class", Schema{Attrs: []Attribute{{Name: "a", Kind: Continuous}}, ClassIndex: 0}, false},
		{"duplicate name", Schema{Attrs: []Attribute{{Name: "a", Kind: Categorical}, {Name: "a", Kind: Categorical}}, ClassIndex: 0}, false},
		{"empty name", Schema{Attrs: []Attribute{{Name: "", Kind: Categorical}}, ClassIndex: 0}, false},
	}
	for _, c := range cases {
		err := c.schema.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestDictionaryRoundTrip(t *testing.T) {
	d := NewDictionary()
	a := d.Code("alpha")
	b := d.Code("beta")
	if a == b {
		t.Fatal("distinct labels share a code")
	}
	if d.Code("alpha") != a {
		t.Error("re-coding a label changed its code")
	}
	if d.Label(a) != "alpha" || d.Label(b) != "beta" {
		t.Error("label lookup broken")
	}
	if d.Label(Missing) != MissingLabel {
		t.Error("missing code should map to MissingLabel")
	}
	if d.Label(99) != MissingLabel {
		t.Error("out-of-range code should map to MissingLabel")
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Error("Lookup must not register")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestDictionaryClone(t *testing.T) {
	d := DictionaryOf("x", "y")
	c := d.Clone()
	c.Code("z")
	if d.Len() != 2 {
		t.Error("clone mutation leaked into the original")
	}
	if c.Len() != 3 {
		t.Error("clone did not accept new label")
	}
}

func TestBuilderBasics(t *testing.T) {
	ds := buildSmall(t)
	if ds.NumRows() != 5 {
		t.Fatalf("NumRows = %d", ds.NumRows())
	}
	if ds.NumAttrs() != 3 {
		t.Fatalf("NumAttrs = %d", ds.NumAttrs())
	}
	if ds.NumClasses() != 2 {
		t.Fatalf("NumClasses = %d", ds.NumClasses())
	}
	if ds.Label(0, 0) != "red" || ds.Label(1, 0) != "blue" {
		t.Error("categorical labels wrong")
	}
	if ds.Label(3, 1) != MissingLabel {
		t.Error("missing continuous should render as ?")
	}
	if ds.Label(4, 0) != MissingLabel {
		t.Error("missing categorical should render as ?")
	}
	if ds.ContValue(0, 1) != 1.5 {
		t.Error("continuous value wrong")
	}
	if !math.IsNaN(ds.ContValue(3, 1)) {
		t.Error("missing continuous should be NaN")
	}
	if ds.AllCategorical() {
		t.Error("dataset has a continuous column")
	}
}

func TestBuilderRowWidthError(t *testing.T) {
	b, _ := NewBuilder(twoAttrSchema())
	if err := b.AddRow([]string{"red"}); err == nil {
		t.Error("short row should fail")
	}
	if _, err := b.Build(); err == nil {
		t.Error("Build after error should fail")
	}
}

func TestBuilderBadNumber(t *testing.T) {
	b, _ := NewBuilder(twoAttrSchema())
	if err := b.AddRow([]string{"red", "not-a-number", "yes"}); err == nil {
		t.Error("unparseable number should fail")
	}
}

func TestCatCodePanicsOnContinuous(t *testing.T) {
	ds := buildSmall(t)
	defer func() {
		if recover() == nil {
			t.Error("CatCode on continuous attr should panic")
		}
	}()
	ds.CatCode(0, 1)
}

func TestContValuePanicsOnCategorical(t *testing.T) {
	ds := buildSmall(t)
	defer func() {
		if recover() == nil {
			t.Error("ContValue on categorical attr should panic")
		}
	}()
	ds.ContValue(0, 0)
}

func TestClassDistribution(t *testing.T) {
	ds := buildSmall(t)
	dist := ds.ClassDistribution()
	// "yes" coded first (appears first), 3 of them; "no" 2.
	if dist[0] != 3 || dist[1] != 2 {
		t.Errorf("class distribution = %v, want [3 2]", dist)
	}
}

func TestValueCounts(t *testing.T) {
	ds := buildSmall(t)
	counts, err := ds.ValueCounts(0)
	if err != nil {
		t.Fatal(err)
	}
	// red=2, blue=1, green=1; one missing not counted.
	var total int64
	for _, n := range counts {
		total += n
	}
	if total != 4 {
		t.Errorf("counted %d values, want 4 (missing excluded)", total)
	}
	if _, err := ds.ValueCounts(1); err == nil {
		t.Error("ValueCounts on continuous attr should fail")
	}
}

func TestFilterAndGather(t *testing.T) {
	ds := buildSmall(t)
	redOnly := ds.Filter(func(r int) bool { return ds.Label(r, 0) == "red" })
	if redOnly.NumRows() != 2 {
		t.Fatalf("filter kept %d rows, want 2", redOnly.NumRows())
	}
	// Dictionaries are shared: codes mean the same thing.
	if redOnly.Label(0, 0) != "red" {
		t.Error("filtered labels corrupted")
	}
	// Gather with repeats.
	g := ds.Gather([]int{0, 0, 0})
	if g.NumRows() != 3 || g.Label(2, 0) != "red" {
		t.Error("gather with repeats broken")
	}
	// Empty gather.
	if e := ds.Gather(nil); e.NumRows() != 0 {
		t.Error("empty gather should yield zero rows")
	}
}

func TestDuplicateMatchesPaperProtocol(t *testing.T) {
	ds := buildSmall(t)
	d := ds.Duplicate(3)
	if d.NumRows() != 15 {
		t.Fatalf("Duplicate(3) rows = %d, want 15", d.NumRows())
	}
	// Class distribution scales exactly.
	orig := ds.ClassDistribution()
	dup := d.ClassDistribution()
	for c := range orig {
		if dup[c] != 3*orig[c] {
			t.Errorf("class %d: %d, want %d", c, dup[c], 3*orig[c])
		}
	}
	if ds.Duplicate(0).NumRows() != ds.NumRows() {
		t.Error("Duplicate(<1) should behave as factor 1")
	}
}

func TestSelectAttrs(t *testing.T) {
	ds := buildSmall(t)
	sub, err := ds.SelectAttrs([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumAttrs() != 2 { // color + class auto-retained
		t.Fatalf("NumAttrs = %d, want 2", sub.NumAttrs())
	}
	if sub.ClassIndex() != 1 {
		t.Errorf("class index = %d, want 1", sub.ClassIndex())
	}
	if sub.Attr(0).Name != "color" {
		t.Error("selected attribute wrong")
	}
	if _, err := ds.SelectAttrs([]int{9}); err == nil {
		t.Error("out-of-range select should fail")
	}
	// Selecting including the class keeps position.
	sub2, err := ds.SelectAttrs([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub2.ClassIndex() != 0 {
		t.Errorf("class index = %d, want 0", sub2.ClassIndex())
	}
}

func TestAddCodedRow(t *testing.T) {
	schema := Schema{
		Attrs: []Attribute{
			{Name: "a", Kind: Categorical},
			{Name: "x", Kind: Continuous},
			{Name: "c", Kind: Categorical},
		},
		ClassIndex: 2,
	}
	b, err := NewBuilder(schema)
	if err != nil {
		t.Fatal(err)
	}
	b.WithDict(0, DictionaryOf("p", "q"))
	b.WithDict(2, DictionaryOf("k0", "k1"))
	if err := b.AddCodedRow([]int32{1, 0, 0}, []float64{0, 3.25, 0}); err != nil {
		t.Fatal(err)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Label(0, 0) != "q" || ds.ContValue(0, 1) != 3.25 || ds.Label(0, 2) != "k0" {
		t.Error("coded row decoded wrong")
	}
}

func TestBuildRejectsCodeBeyondDict(t *testing.T) {
	schema := Schema{
		Attrs:      []Attribute{{Name: "a", Kind: Categorical}, {Name: "c", Kind: Categorical}},
		ClassIndex: 1,
	}
	b, _ := NewBuilder(schema)
	b.WithDict(0, DictionaryOf("only"))
	b.WithDict(1, DictionaryOf("k"))
	if err := b.AddCodedRow([]int32{5, 0}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Error("Build should reject codes beyond the dictionary")
	}
}

func TestWithDictErrors(t *testing.T) {
	b, _ := NewBuilder(twoAttrSchema())
	b.WithDict(1, NewDictionary()) // continuous: invalid
	if err := b.AddRow([]string{"red", "1", "yes"}); err == nil {
		t.Error("builder should be poisoned after bad WithDict")
	}
}

func TestSortedValueCodes(t *testing.T) {
	ds := buildSmall(t)
	codes := ds.SortedValueCodes(0)
	prev := ""
	dict := ds.Column(0).Dict
	for _, c := range codes {
		l := dict.Label(c)
		if l < prev {
			t.Fatalf("codes not label-sorted: %q after %q", l, prev)
		}
		prev = l
	}
	if ds.SortedValueCodes(1) != nil {
		t.Error("continuous attribute should yield nil")
	}
}

// Property: Gather(perm) preserves multiset of class codes.
func TestGatherPreservesClassMultiset(t *testing.T) {
	ds := buildSmall(t)
	f := func(seed uint8) bool {
		// Build an arbitrary index list within range.
		idx := make([]int, 0, 8)
		x := int(seed)
		for i := 0; i < 8; i++ {
			idx = append(idx, (x+i*3)%ds.NumRows())
		}
		g := ds.Gather(idx)
		want := make(map[int32]int)
		for _, r := range idx {
			want[ds.ClassCode(r)]++
		}
		got := make(map[int32]int)
		for r := 0; r < g.NumRows(); r++ {
			got[g.ClassCode(r)]++
		}
		if len(want) != len(got) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	if Categorical.String() != "categorical" || Continuous.String() != "continuous" {
		t.Error("Kind.String broken")
	}
	if Kind(7).String() == "" {
		t.Error("unknown kind should still render")
	}
}
