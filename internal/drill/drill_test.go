package drill

import (
	"context"
	"errors"
	"testing"
	"time"

	"opmap/internal/compare"
	"opmap/internal/dataset"
	"opmap/internal/engine"
	"opmap/internal/faultinject"
	"opmap/internal/rulecube"
	"opmap/internal/workload"
)

// drillFixture builds the planted two-condition workload and the
// oriented comparison input for its good-vs-bad phone pair.
func drillFixture(t *testing.T) (*dataset.Dataset, workload.DrillTruth, compare.Input) {
	t.Helper()
	ds, gt, err := workload.DrillLog(workload.DrillLogConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	attr := ds.AttrIndex(gt.PhoneAttr)
	if attr < 0 {
		t.Fatalf("attribute %q missing", gt.PhoneAttr)
	}
	dict := ds.Column(attr).Dict
	v1, ok1 := dict.Lookup(gt.GoodPhone)
	v2, ok2 := dict.Lookup(gt.BadPhone)
	class, ok3 := ds.Column(ds.ClassIndex()).Dict.Lookup(gt.DropClass)
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("ground-truth labels not in dictionaries")
	}
	return ds, gt, compare.Input{Attr: attr, V1: v1, V2: v2, Class: class}
}

// condSet extracts the finding's conditions as name=label pairs,
// order-independent.
func condSet(f Finding) map[string]string {
	m := make(map[string]string, len(f.Conds))
	for _, c := range f.Conds {
		m[c.Name] = c.Label
	}
	return m
}

// TestDrillRecoversPlantedPair is the headline acceptance check: the
// planted (Terrain, Signal-Band) conjunction must rank first in the
// drill-down while the one-condition root ranking surfaces the decoy
// attribute instead.
func TestDrillRecoversPlantedPair(t *testing.T) {
	ds, gt, in := drillFixture(t)
	src, err := engine.NewLazy(ds, engine.LazyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(src).Drill(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("unexpected partial result: %+v", res.Unexplored)
	}

	// The 1-D comparison must NOT surface the joint pair: its top
	// attribute is the planted decoy.
	if len(res.Root.Ranked) == 0 {
		t.Fatal("root ranking is empty")
	}
	if got := res.Root.Ranked[0].Name; got != gt.SurfaceAttr {
		t.Fatalf("root ranking surfaces %q, want decoy %q", got, gt.SurfaceAttr)
	}
	for _, name := range []string{gt.JointAttrA, gt.JointAttrB} {
		if res.Root.Ranked[0].Name == name {
			t.Fatalf("joint attribute %q already tops the 1-D ranking; the plant is not conditional", name)
		}
	}

	// The drill-down's top finding must be exactly the planted pair.
	if len(res.Findings) == 0 {
		t.Fatal("no findings")
	}
	top := res.Findings[0]
	if top.Depth != 2 {
		t.Fatalf("top finding depth = %d (%s), want 2", top.Depth, top.Label())
	}
	want := map[string]string{gt.JointAttrA: gt.JointValueA, gt.JointAttrB: gt.JointValueB}
	got := condSet(top)
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("top finding %s, want %s=%s ∧ %s=%s", top.Label(), gt.JointAttrA, gt.JointValueA, gt.JointAttrB, gt.JointValueB)
		}
	}

	// And it must outrank every one-condition finding by a clear margin.
	for _, f := range res.Findings[1:] {
		if f.Depth == 1 && f.Score >= top.Score {
			t.Fatalf("depth-1 finding %s (score %v) not below the pair (score %v)", f.Label(), f.Score, top.Score)
		}
	}
	if top.Cf2 <= top.Cf1 {
		t.Fatalf("pair cell confidences not oriented: cf1=%v cf2=%v", top.Cf1, top.Cf2)
	}
}

// TestDrillEagerMatchesLazy drills the same input through an eager
// store (whose k ≥ 3 cubes route through its internal lazy source) and
// a lazy source, and requires identical findings.
func TestDrillEagerMatchesLazy(t *testing.T) {
	ds, _, in := drillFixture(t)
	lazy, err := engine.NewLazy(ds, engine.LazyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{MaxDepth: 2, Beam: 4}
	a, err := New(lazy).Drill(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(engine.NewEager(store)).Drill(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Findings) != len(b.Findings) {
		t.Fatalf("lazy found %d findings, eager %d", len(a.Findings), len(b.Findings))
	}
	for i := range a.Findings {
		fa, fb := a.Findings[i], b.Findings[i]
		if fa.Label() != fb.Label() || fa.Score != fb.Score || fa.N2 != fb.N2 || fa.C2 != fb.C2 {
			t.Fatalf("finding %d differs: lazy %s (%v), eager %s (%v)", i, fa.Label(), fa.Score, fb.Label(), fb.Score)
		}
	}
}

// TestMeasureByName exercises the measure registry.
func TestMeasureByName(t *testing.T) {
	for name, want := range map[string]string{
		"":           "paper",
		"paper":      "paper",
		"M":          "paper",
		"lift":       "lift",
		"Conviction": "conviction",
	} {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if m.Name() != want {
			t.Errorf("ByName(%q) = %q, want %q", name, m.Name(), want)
		}
	}
	if _, err := ByName("chi-squared"); err == nil {
		t.Error("unknown measure accepted")
	}
}

// TestMeasureScores spot-checks the three measures on a hot cell (D2
// confidence far beyond expectation) and a proportional cell (exactly
// at expectation).
func TestMeasureScores(t *testing.T) {
	hot := Stats{N1: 100, C1: 5, N2: 100, C2: 80, Cf1: 0.05, Cf2: 0.8, RCf1: 0.07, RCf2: 0.75, Ratio: 2}
	flat := Stats{N1: 100, C1: 5, N2: 100, C2: 10, Cf1: 0.05, Cf2: 0.1, RCf1: 0.05, RCf2: 0.1, Ratio: 2}
	for _, m := range []Measure{PaperM{}, Lift{}, Conviction{}} {
		if s := m.Score(hot); s <= 0 {
			t.Errorf("%s: hot cell scored %v, want > 0", m.Name(), s)
		}
		if s := m.Score(flat); s != 0 {
			t.Errorf("%s: proportional cell scored %v, want 0", m.Name(), s)
		}
	}
	// A deterministic cell must not produce Inf (JSON-unmarshalable).
	sure := Stats{N2: 50, C2: 50, RCf1: 0.1, RCf2: 1.0, Ratio: 2}
	if s := (Conviction{}).Score(sure); s <= 0 || s > 1e12 {
		t.Errorf("conviction of deterministic cell = %v, want finite positive", s)
	}
}

// TestDrillNodeBudget caps MaxNodes far below the candidate count and
// expects a truncated, partial result.
func TestDrillNodeBudget(t *testing.T) {
	ds, _, in := drillFixture(t)
	src, err := engine.NewLazy(ds, engine.LazyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(src).Drill(in, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("budget-capped run not marked partial")
	}
	if len(res.Unexplored) == 0 {
		t.Fatal("budget-capped run lists nothing unexplored")
	}
	if len(res.Findings) > 1 {
		t.Fatalf("budget 1 produced %d findings", len(res.Findings))
	}
}

// TestDrillPartialOnDeadline injects a context failure mid-frontier:
// strict mode fails, degraded mode returns the findings so far with
// the rest annotated.
func TestDrillPartialOnDeadline(t *testing.T) {
	ds, _, in := drillFixture(t)
	src, err := engine.NewLazy(ds, engine.LazyOptions{})
	if err != nil {
		t.Fatal(err)
	}

	arm := func() func() {
		disarm, err := faultinject.Arm(faultinject.Fault{
			Site: faultinject.SiteDrillNode,
			Kind: faultinject.Error,
			Err:  context.DeadlineExceeded,
		})
		if err != nil {
			t.Fatal(err)
		}
		return disarm
	}

	disarm := arm()
	_, err = New(src).Drill(in, Options{})
	disarm()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("strict run: err = %v, want DeadlineExceeded", err)
	}

	// The injected error is not a *context* expiry, so PartialOnDeadline
	// alone must not degrade: only a genuinely expired context does.
	disarm = arm()
	_, err = New(src).Drill(in, Options{PartialOnDeadline: true})
	disarm()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("injected-error run: err = %v, want DeadlineExceeded", err)
	}

	// A Delay fault at the first frontier node outlasts the context
	// deadline; HitContext returns the context's error, and the
	// degraded run keeps its depth-1 findings with the frontier
	// annotated as unexplored.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	disarm, ferr := faultinject.Arm(faultinject.Fault{
		Site:  faultinject.SiteDrillNode,
		Kind:  faultinject.Delay,
		Delay: time.Minute,
	})
	if ferr != nil {
		t.Fatal(ferr)
	}
	defer disarm()
	res, err := New(src).DrillContext(ctx, in, Options{PartialOnDeadline: true})
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	if !res.Partial {
		t.Fatal("degraded run not marked partial")
	}
	if len(res.Unexplored) == 0 {
		t.Fatal("degraded run lists nothing unexplored")
	}
	for _, f := range res.Findings {
		if f.Depth != 1 {
			t.Fatalf("degraded run produced depth-%d finding %s before any expansion", f.Depth, f.Label())
		}
	}
}
