// Package drill implements multi-condition drill-down over rule
// cubes. A pairwise comparison (compare.Compare) explains a confidence
// gap between two sub-populations D1 = {A1=v_i} and D2 = {A1=v_j} one
// attribute at a time; the drill-down planner searches for condition
// *conjunctions* — sub-populations like {A1=v_j, Terrain=hilly,
// Signal-Band=weak} — whose class confidence exceeds what the
// comparison's expectation ratio predicts. Effects that two or more
// conditions produce jointly leave only a diluted trace in any single
// attribute's marginal, so the one-condition ranking alone cannot
// surface them.
//
// The planner is a beam search over the lattice of condition sets:
// the root is the input comparison itself; each frontier node fixes a
// set of conditions beyond the comparison attribute, refining both
// sub-populations; expanding a node scores every remaining candidate
// attribute inside the refined populations and turns each
// sufficiently interesting (attribute, value) cell into a child node.
// Only the highest-scoring nodes per depth are expanded ("high-M
// branches"), and depth, beam width and a total node budget cap the
// work. Every cube a frontier expansion needs is declared to the
// engine in one batch, so a lazy source answers all cache misses from
// a single shared dataset scan.
//
// Candidate extensions are scored with the paper's contribution
// measure by default (CI-revised W_k of Eq. 1–2, applied inside the
// refined populations); alternative interestingness measures in the
// style of the Kannan & Bhaskaran survey (lift, conviction) plug in
// behind the Measure interface. Scores are normalized by the
// attainable maximum at each node (Section IV.A's boundary), so
// findings at different depths — whose absolute excess masses are not
// comparable — rank on a common scale.
package drill

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"opmap/internal/compare"
	"opmap/internal/dataset"
	"opmap/internal/engine"
	"opmap/internal/faultinject"
	"opmap/internal/obsv"
	"opmap/internal/rulecube"
	"opmap/internal/stats"
)

// Stats carries one candidate extension cell's counts and revised
// confidences, plus the parent node's expectation ratio — everything a
// Measure may consult.
type Stats struct {
	N1, C1 int64 // refined D1 rows with the candidate value: total, class
	N2, C2 int64 // refined D2 rows with the candidate value: total, class

	Cf1, Cf2   float64 // raw confidences of the cell in each side
	RCf1, RCf2 float64 // CI-revised confidences (equal to raw when CI is off)

	// Ratio is cf2/cf1 of the parent node's refined populations: the
	// multiplier by which the cell's D2 confidence is *expected* to
	// exceed its D1 confidence.
	Ratio float64
}

// Measure scores one candidate condition extension. A score of zero or
// less means "not interesting": the cell neither becomes a finding nor
// a frontier node. Implementations must be pure functions of Stats.
type Measure interface {
	Name() string
	Score(s Stats) float64
}

// PaperM is the default measure: the paper's per-value contribution
// W_k = F_k·N_2k with F_k = rcf_2k − rcf_1k·ratio (Eq. 1–2), computed
// inside the refined populations.
type PaperM struct{}

// Name implements Measure.
func (PaperM) Name() string { return "paper" }

// Score implements Measure.
func (PaperM) Score(s Stats) float64 {
	f := s.RCf2 - s.RCf1*s.Ratio
	if f <= 0 || s.N2 == 0 {
		return 0
	}
	return f * float64(s.N2)
}

// Lift is the multiplicative analogue of PaperM, after the lift
// measure of the association-rule interestingness literature (Kannan &
// Bhaskaran): how many times the cell's revised D2 confidence exceeds
// its expectation, minus one, weighted by the cell's D2 mass.
type Lift struct{}

// Name implements Measure.
func (Lift) Name() string { return "lift" }

// Score implements Measure.
func (Lift) Score(s Stats) float64 {
	exp := s.RCf1 * s.Ratio
	if exp <= 0 || s.N2 == 0 {
		return 0
	}
	l := s.RCf2/exp - 1
	if l <= 0 {
		return 0
	}
	return l * float64(s.N2)
}

// Conviction adapts the conviction measure (Kannan & Bhaskaran):
// (1 − expected)/(1 − actual), sensitive to cells whose confidence
// approaches certainty. The ratio is clamped so a deterministic cell
// (actual = 1) stays finite and JSON-marshalable.
type Conviction struct{}

// convictionClamp bounds the denominator 1−rcf2 away from zero.
const convictionClamp = 1e-9

// Name implements Measure.
func (Conviction) Name() string { return "conviction" }

// Score implements Measure.
func (Conviction) Score(s Stats) float64 {
	if s.N2 == 0 {
		return 0
	}
	exp := math.Min(1, s.RCf1*s.Ratio)
	denom := 1 - s.RCf2
	if denom < convictionClamp {
		denom = convictionClamp
	}
	conv := (1-exp)/denom - 1
	if conv <= 0 {
		return 0
	}
	return conv * float64(s.N2)
}

// ByName resolves a measure from its wire name. The empty string means
// the default (paper) measure.
func ByName(name string) (Measure, error) {
	switch strings.ToLower(name) {
	case "", "paper", "m":
		return PaperM{}, nil
	case "lift":
		return Lift{}, nil
	case "conviction":
		return Conviction{}, nil
	}
	return nil, fmt.Errorf("drill: unknown measure %q (have paper, lift, conviction)", name)
}

// Options configures a drill-down. The zero value drills two
// conditions deep with a beam of 8 and the paper's measure.
type Options struct {
	// MaxDepth is the maximum number of drill conditions beyond the
	// comparison attribute. Zero means 2.
	MaxDepth int
	// Beam is the number of highest-scoring expandable nodes carried
	// to the next depth. Zero means 8.
	Beam int
	// MaxNodes caps the total candidate nodes created across the whole
	// run (the planner's work budget). Zero means 256.
	MaxNodes int
	// MinSupport is the minimum refined sub-population size, on both
	// sides, for a cell to become a finding. It also stands in for the
	// property-attribute screening at depth ≥ 2: a value occurring in
	// only one side never qualifies. Zero means 8.
	MinSupport int64
	// Measure scores candidate extensions. Nil means PaperM.
	Measure Measure
	// Compare configures the underlying comparison: CI level and
	// method, property threshold, and the candidate attribute
	// restriction (Compare.Attrs), all of which the planner honors at
	// every depth.
	Compare compare.Options
	// PartialOnDeadline makes DrillContext return the findings
	// collected so far — with the unexplored frontier annotated in
	// Result.Unexplored — when the context expires mid-search, instead
	// of failing the whole call.
	PartialOnDeadline bool
}

func (o Options) maxDepth() int {
	if o.MaxDepth <= 0 {
		return 2
	}
	return o.MaxDepth
}

func (o Options) beam() int {
	if o.Beam <= 0 {
		return 8
	}
	return o.Beam
}

func (o Options) maxNodes() int {
	if o.MaxNodes <= 0 {
		return 256
	}
	return o.MaxNodes
}

func (o Options) minSupport() int64 {
	if o.MinSupport <= 0 {
		return 8
	}
	return o.MinSupport
}

func (o Options) measure() Measure {
	if o.Measure == nil {
		return PaperM{}
	}
	return o.Measure
}

// Condition is one fixed attribute=value condition of a finding, with
// its display names resolved.
type Condition struct {
	Attr  int    `json:"attr"`
	Name  string `json:"name"`
	Value int32  `json:"value"`
	Label string `json:"label"`
}

// Finding is one scored condition path: the sub-populations
// D1 ∩ conds and D2 ∩ conds with their class counts and the measure
// score of the final condition at its parent node.
type Finding struct {
	// Conds lists the drill conditions beyond the comparison
	// attribute, in the order they were fixed.
	Conds []Condition `json:"conds"`
	// Depth is len(Conds).
	Depth int `json:"depth"`
	// Score is the measure score normalized by the parent node's
	// attainable maximum (cf2·|D2| at the node, Section IV.A), making
	// findings comparable across depths. Findings rank by Score.
	Score float64 `json:"score"`
	// Raw is the unnormalized measure score (for PaperM, the excess
	// class mass W in records).
	Raw float64 `json:"raw"`

	N1 int64 `json:"n1"` // refined D1 size
	C1 int64 `json:"c1"` // of those, class-of-interest rows
	N2 int64 `json:"n2"` // refined D2 size
	C2 int64 `json:"c2"` // of those, class-of-interest rows

	Cf1 float64 `json:"cf1"` // C1/N1
	Cf2 float64 `json:"cf2"` // C2/N2
}

// Label renders the finding's condition path as "Attr=value ∧ ...".
func (f Finding) Label() string {
	parts := make([]string, len(f.Conds))
	for i, c := range f.Conds {
		parts[i] = c.Name + "=" + c.Label
	}
	return strings.Join(parts, " ∧ ")
}

// key is the canonical identity of the finding's condition *set*,
// order-independent, used to deduplicate paths that fix the same
// conditions in different orders.
func (f Finding) key() string {
	pairs := make([]string, len(f.Conds))
	for i, c := range f.Conds {
		pairs[i] = strconv.Itoa(c.Attr) + "=" + strconv.FormatInt(int64(c.Value), 10)
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

// expandable reports whether the finding can serve as a frontier node:
// both refined confidences must be defined and nonzero so the node has
// a meaningful expectation ratio and normalization boundary.
func (f Finding) expandable() bool { return f.C1 > 0 && f.C2 > 0 }

// Result is a complete drill-down: the root comparison and every
// scored condition path, highest score first.
type Result struct {
	// Root is the one-condition comparison the drill-down started
	// from, oriented so Rule1 has the lower confidence.
	Root *compare.Result `json:"root"`
	// Findings lists every scored condition path, by descending Score.
	// Depth-1 findings restate the root ranking's per-value cells;
	// deeper findings are conjunctions no single attribute surfaces.
	Findings []Finding `json:"findings"`
	// Expanded counts the frontier nodes whose children were computed,
	// including the root.
	Expanded int `json:"expanded"`
	// Measure names the measure that scored the findings.
	Measure string `json:"measure"`
	// Partial is set when the search stopped early because the context
	// expired (with Options.PartialOnDeadline) or the node budget ran
	// out; what was not explored is annotated in Unexplored.
	Partial    bool                `json:"partial"`
	Unexplored []compare.ItemError `json:"unexplored,omitempty"`

	Options Options `json:"-"`
}

// Top returns the n highest-ranked findings.
func (r *Result) Top(n int) []Finding {
	if n > len(r.Findings) {
		n = len(r.Findings)
	}
	return r.Findings[:n]
}

// Planner runs drill-downs against a cube source.
type Planner struct {
	src engine.CubeSource
	ds  *dataset.Dataset
}

// New returns a Planner over the given cube source.
func New(src engine.CubeSource) *Planner {
	return &Planner{src: src, ds: src.Dataset()}
}

// Drill runs DrillContext with a background context.
func (p *Planner) Drill(in compare.Input, opts Options) (*Result, error) {
	return p.DrillContext(context.Background(), in, opts)
}

// site is one unit of frontier work: score candidate attribute cand
// inside the populations refined by parent's conditions.
type site struct {
	parent *Finding
	cand   int
}

// DrillContext runs the beam search. The context is checked once per
// (node, candidate attribute) pair; on expiry the call either fails or
// degrades to a partial result, per Options.PartialOnDeadline.
func (p *Planner) DrillContext(ctx context.Context, in compare.Input, opts Options) (*Result, error) {
	meas := opts.measure()
	root, err := compare.NewSource(p.src).CompareContext(ctx, in, opts.Compare)
	if err != nil {
		return nil, fmt.Errorf("drill: root comparison: %w", err)
	}

	res := &Result{Root: root, Measure: meas.Name(), Options: opts}
	split := in.Attr
	v1 := root.Rule1.Conditions[0].Value
	v2 := root.Rule2.Conditions[0].Value

	// Candidate condition attributes are exactly the attributes the
	// root ranking scored: this honors Options.Compare.Attrs and keeps
	// property attributes (whose values do not co-occur in both
	// sub-populations) out of the condition lattice.
	cands := make([]int, 0, len(root.Ranked))
	for _, s := range root.Ranked {
		cands = append(cands, s.Attr)
	}

	// Depth 1 comes straight from the root ranking's per-value cells —
	// no extra cube work.
	budget := opts.maxNodes()
	created := 0
	level := make([]Finding, 0, 16)
	rootDenom := root.Cf2 * float64(root.Rule2.CondCount)
	for _, s := range root.Ranked {
		for _, d := range s.Values {
			st := Stats{
				N1: d.N1, C1: d.C1, N2: d.N2, C2: d.C2,
				Cf1: d.Cf1, Cf2: d.Cf2, RCf1: d.RCf1, RCf2: d.RCf2,
				Ratio: root.Ratio,
			}
			w := meas.Score(st)
			if w <= 0 || d.N1 < opts.minSupport() || d.N2 < opts.minSupport() {
				continue
			}
			if created >= budget {
				res.Partial = true
				res.Unexplored = append(res.Unexplored, compare.ItemError{
					Item: "depth 1 candidates",
					Err:  fmt.Sprintf("drill: node budget %d exhausted", budget),
				})
				break
			}
			created++
			f := Finding{
				Conds: []Condition{p.condition(s.Attr, d.Value)},
				Depth: 1,
				Raw:   w,
				N1:    d.N1, C1: d.C1, N2: d.N2, C2: d.C2,
				Cf1: d.Cf1, Cf2: d.Cf2,
			}
			if rootDenom > 0 {
				f.Score = w / rootDenom
			}
			level = append(level, f)
		}
		if res.Partial {
			break
		}
	}
	res.Findings = append(res.Findings, level...)
	res.Expanded = 1 // the root

search:
	for depth := 2; depth <= opts.maxDepth() && !res.Partial; depth++ {
		beam := selectBeam(level, opts.beam())
		if len(beam) == 0 {
			break
		}

		// Declare the whole frontier's cube working set in one batch so
		// a lazy source materializes every miss from one shared scan.
		var reqs []engine.CubeReq
		var sites []site
		for i := range beam {
			f := &beam[i]
			used := map[int]bool{split: true}
			attrs := make([]int, 0, len(f.Conds)+2)
			attrs = append(attrs, split)
			for _, c := range f.Conds {
				used[c.Attr] = true
				attrs = append(attrs, c.Attr)
			}
			for _, a := range cands {
				if used[a] {
					continue
				}
				set := append(append([]int(nil), attrs...), a)
				sort.Ints(set)
				reqs = append(reqs, engine.CubeReqOf(set))
				sites = append(sites, site{parent: f, cand: a})
			}
		}
		if len(sites) == 0 {
			break
		}
		cubes, err := p.src.Cubes(ctx, reqs)
		if err != nil {
			if !opts.PartialOnDeadline || ctx.Err() == nil {
				return nil, fmt.Errorf("drill: frontier cubes at depth %d: %w", depth, err)
			}
			res.Partial = true
			annotateSites(res, sites, p.ds, err)
			break
		}

		parents := make(map[*Finding]bool, len(beam))
		next := make([]Finding, 0, 16)
		for si, s := range sites {
			if err := ctxErrOrFault(ctx); err != nil {
				if !opts.PartialOnDeadline || ctx.Err() == nil {
					return nil, err
				}
				res.Partial = true
				annotateSites(res, sites[si:], p.ds, err)
				break search
			}
			children, full, err := p.expand(cubes[si], split, s.parent, s.cand, v1, v2, in.Class, meas, opts, &created, budget)
			if err != nil {
				return nil, err
			}
			parents[s.parent] = true
			next = append(next, children...)
			if full {
				res.Partial = true
				res.Unexplored = append(res.Unexplored, compare.ItemError{
					Item: fmt.Sprintf("depth %d frontier", depth),
					Err:  fmt.Sprintf("drill: node budget %d exhausted", budget),
				})
				next = dedupe(next)
				res.Findings = append(res.Findings, next...)
				res.Expanded += len(parents)
				break search
			}
		}
		next = dedupe(next)
		res.Findings = append(res.Findings, next...)
		res.Expanded += len(parents)
		level = next
	}

	sort.SliceStable(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		switch {
		case a.Score > b.Score:
			return true
		case b.Score > a.Score:
			return false
		case a.Depth != b.Depth:
			return a.Depth < b.Depth
		}
		return a.key() < b.key()
	})

	reg := obsv.Default()
	reg.Counter(obsv.DrillDownRunsCounterName).Inc()
	reg.Counter(obsv.DrillDownNodesCounterName).Add(int64(res.Expanded))
	return res, nil
}

// ctxErrOrFault mirrors compare.ctxOrFault for the drill loop.
func ctxErrOrFault(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return faultinject.HitContext(ctx, faultinject.SiteDrillNode)
}

// annotateSites records the frontier work a degraded run did not
// attempt.
func annotateSites(res *Result, sites []site, ds *dataset.Dataset, err error) {
	for _, s := range sites {
		res.Unexplored = append(res.Unexplored, compare.ItemError{
			Item: s.parent.Label() + " + " + ds.Attr(s.cand).Name,
			Err:  err.Error(),
		})
	}
}

// expand scores candidate attribute cand inside the populations
// refined by parent's conditions, using the (split × conds × cand)
// cube, and returns the qualifying child findings. full reports that
// the node budget ran out mid-expansion.
func (p *Planner) expand(cube *rulecube.Cube, split int, parent *Finding, cand int, v1, v2, class int32, meas Measure, opts Options, created *int, budget int) (children []Finding, full bool, err error) {
	// Fix the parent's conditions one slice at a time, reducing the
	// cube to the 2-D (split × cand) plane of the refined populations.
	c := cube
	for _, cond := range parent.Conds {
		pos := dimOf(c, cond.Attr)
		if pos < 0 {
			return nil, false, fmt.Errorf("drill: cube %v lacks condition attribute %d", c.AttrIndices(), cond.Attr)
		}
		c, err = c.Slice(pos, cond.Value)
		if err != nil {
			return nil, false, err
		}
	}
	posSplit, posCand := dimOf(c, split), dimOf(c, cand)
	if c.NumDims() != 2 || posSplit < 0 || posCand < 0 {
		return nil, false, fmt.Errorf("drill: reduced cube %v does not match attributes (%d,%d)", c.AttrIndices(), split, cand)
	}

	cf1 := float64(parent.C1) / float64(parent.N1)
	cf2 := float64(parent.C2) / float64(parent.N2)
	ratio := cf2 / cf1
	denom := cf2 * float64(parent.N2)

	lvl := opts.Compare.Level
	if stats.IsZero(float64(lvl)) {
		lvl = stats.Level95
	}
	z := 0.0
	if !opts.Compare.DisableCI {
		z, err = stats.ZValue(lvl)
		if err != nil {
			return nil, false, err
		}
	}

	coords := make([]int32, 2)
	cell := func(v, k int32) (n, cc int64, err error) {
		coords[posSplit], coords[posCand] = v, k
		if n, err = c.CondCount(coords); err != nil {
			return 0, 0, err
		}
		if cc, err = c.Count(coords, class); err != nil {
			return 0, 0, err
		}
		return n, cc, nil
	}
	card := c.Dim(posCand)
	for k := int32(0); int(k) < card; k++ {
		n1, c1, err := cell(v1, k)
		if err != nil {
			return nil, false, err
		}
		n2, c2, err := cell(v2, k)
		if err != nil {
			return nil, false, err
		}
		if n1 < opts.minSupport() || n2 < opts.minSupport() {
			continue
		}
		st := Stats{N1: n1, C1: c1, N2: n2, C2: c2, Ratio: ratio}
		st.Cf1 = float64(c1) / float64(n1)
		st.Cf2 = float64(c2) / float64(n2)
		st.RCf1, st.RCf2 = st.Cf1, st.Cf2
		if !opts.Compare.DisableCI {
			st.RCf1 = math.Min(1, st.Cf1+margin(opts.Compare.Method, z, st.Cf1, n1, c1, lvl))
			st.RCf2 = math.Max(0, st.Cf2-margin(opts.Compare.Method, z, st.Cf2, n2, c2, lvl))
		}
		w := meas.Score(st)
		if w <= 0 {
			continue
		}
		if *created >= budget {
			return children, true, nil
		}
		*created++
		f := Finding{
			Conds: append(append([]Condition(nil), parent.Conds...), p.condition(cand, k)),
			Depth: parent.Depth + 1,
			Raw:   w,
			N1:    n1, C1: c1, N2: n2, C2: c2,
			Cf1: st.Cf1, Cf2: st.Cf2,
		}
		if denom > 0 {
			f.Score = w / denom
		}
		children = append(children, f)
	}
	return children, false, nil
}

// margin computes the CI half-width for one cell, mirroring the
// comparison's interval arithmetic (compare.margin).
func margin(method compare.IntervalMethod, z, cf float64, n, c int64, lvl stats.ConfidenceLevel) float64 {
	if n == 0 {
		return 0.5
	}
	if method == compare.Wilson {
		ci, err := stats.WilsonCI(c, n, lvl)
		if err != nil {
			return 0.5
		}
		return ci.Margin
	}
	return z * math.Sqrt(cf*(1-cf)/float64(n))
}

// condition resolves display names for one attribute=value pair.
func (p *Planner) condition(attr int, value int32) Condition {
	return Condition{
		Attr:  attr,
		Name:  p.ds.Attr(attr).Name,
		Value: value,
		Label: p.ds.Column(attr).Dict.Label(value),
	}
}

// dimOf returns the cube dimension position of the given dataset
// attribute, or -1.
func dimOf(c *rulecube.Cube, attr int) int {
	for pos, a := range c.AttrIndices() {
		if a == attr {
			return pos
		}
	}
	return -1
}

// selectBeam picks the highest-scoring expandable nodes of one depth
// level, deduplicated by condition set.
func selectBeam(level []Finding, width int) []Finding {
	beam := make([]Finding, 0, len(level))
	for _, f := range level {
		if f.expandable() {
			beam = append(beam, f)
		}
	}
	sort.SliceStable(beam, func(i, j int) bool { return beam[i].Score > beam[j].Score })
	if len(beam) > width {
		beam = beam[:width]
	}
	return beam
}

// dedupe collapses findings that fix the same condition set in
// different orders, keeping the highest-scoring path.
func dedupe(fs []Finding) []Finding {
	seen := make(map[string]int, len(fs))
	out := fs[:0]
	for _, f := range fs {
		k := f.key()
		if i, ok := seen[k]; ok {
			if f.Score > out[i].Score {
				out[i] = f
			}
			continue
		}
		seen[k] = len(out)
		out = append(out, f)
	}
	return out
}
