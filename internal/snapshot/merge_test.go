package snapshot_test

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"opmap/internal/dataset"
	"opmap/internal/rulecube"
	"opmap/internal/snapshot"
)

// shardSnapshot builds an eager snapshot over "phone location dropped"
// rows with fresh dictionaries, so shards built from different row sets
// have genuinely different code assignments.
func shardSnapshot(t testing.TB, hash string, rows ...string) *snapshot.Snapshot {
	t.Helper()
	b, err := dataset.NewBuilder(dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "phone", Kind: dataset.Categorical},
			{Name: "location", Kind: dataset.Categorical},
			{Name: "dropped", Kind: dataset.Categorical},
		},
		ClassIndex: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := b.AddRow(strings.Fields(r)); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return &snapshot.Snapshot{
		SourceHash:  snapshot.HashBytes([]byte(hash)),
		CreatedUnix: 1754000000,
		Rows:        ds.NumRows(),
		Mode:        snapshot.ModeEager,
		Cuts:        map[string][]float64{"temp": {1.5, 2.5}},
		Dataset:     ds,
		Store:       store,
	}
}

// Shard rows chosen so shard2 opens with labels shard1 never saw:
// the merge has to remap, not just sum.
var (
	mergeShard1Rows = []string{
		"p1 north yes", "p1 south no", "p2 north yes", "p2 south no",
	}
	mergeShard2Rows = []string{
		"p3 east no", "p3 north maybe", "p1 east yes", "p4 south no",
	}
)

// TestMergeMatchesSinglePass: merging two shard snapshots (with
// non-identical dictionaries) through a Write/Read round trip must
// serve exactly the store a single pass over the concatenated rows
// would have built.
func TestMergeMatchesSinglePass(t *testing.T) {
	sn1 := shardSnapshot(t, "shard-1", mergeShard1Rows...)
	sn1.IngestSeq = 7
	sn2 := shardSnapshot(t, "shard-2", mergeShard2Rows...)
	sn2.IngestSeq = 12
	sn2.CreatedUnix = 1754009999

	// Round-trip each shard through the file format first, like a real
	// fleet would: the merge operates on restored (schema-only) shards.
	r1, err := snapshot.Read(bytes.NewReader(encode(t, sn1)))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := snapshot.Read(bytes.NewReader(encode(t, sn2)))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := snapshot.Merge(r1, r2)
	if err != nil {
		t.Fatal(err)
	}

	if want := len(mergeShard1Rows) + len(mergeShard2Rows); merged.Rows != want {
		t.Errorf("Rows = %d, want %d", merged.Rows, want)
	}
	if merged.IngestSeq != 12 {
		t.Errorf("IngestSeq = %d, want max 12", merged.IngestSeq)
	}
	if merged.CreatedUnix != 1754009999 {
		t.Errorf("CreatedUnix = %d, want max 1754009999", merged.CreatedUnix)
	}
	if merged.Mode != snapshot.ModeEager {
		t.Errorf("Mode = %v, want eager", merged.Mode)
	}
	wantHash := snapshot.HashBytes([]byte(sn1.SourceHash + "\n" + sn2.SourceHash))
	if merged.SourceHash != wantHash {
		t.Errorf("SourceHash = %q, want hash over ordered shard hashes", merged.SourceHash)
	}

	// The store oracle: a single pass over the concatenated rows, also
	// round-tripped, must serialize byte-identically to the merged store.
	all := append(append([]string(nil), mergeShard1Rows...), mergeShard2Rows...)
	single := shardSnapshot(t, "single", all...)
	rs, err := snapshot.Read(bytes.NewReader(encode(t, single)))
	if err != nil {
		t.Fatal(err)
	}
	var mergedStore, singleStore bytes.Buffer
	if err := rulecube.WriteStore(&mergedStore, merged.Store); err != nil {
		t.Fatal(err)
	}
	if err := rulecube.WriteStore(&singleStore, rs.Store); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mergedStore.Bytes(), singleStore.Bytes()) {
		t.Error("merged store stream differs from single-pass store stream")
	}

	// And the merged snapshot must itself round-trip: write, read,
	// rebind — the dictionaries grown by the merge stay consistent with
	// the re-laid cube dimensions.
	back, err := snapshot.Read(bytes.NewReader(encode(t, merged)))
	if err != nil {
		t.Fatalf("merged snapshot does not round-trip: %v", err)
	}
	if back.Rows != merged.Rows || back.IngestSeq != merged.IngestSeq {
		t.Errorf("round-tripped header = rows %d seq %d, want %d/%d",
			back.Rows, back.IngestSeq, merged.Rows, merged.IngestSeq)
	}
}

func TestMergeSingleShard(t *testing.T) {
	sn := shardSnapshot(t, "solo", mergeShard1Rows...)
	merged, err := snapshot.Merge(sn)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Rows != sn.Rows || merged.Store != sn.Store {
		t.Error("single-shard merge should pass the shard through")
	}
	if merged.SourceHash != snapshot.HashBytes([]byte(sn.SourceHash)) {
		t.Error("single-shard source hash should still derive from the shard hash")
	}
}

func TestMergeRejectsLazy(t *testing.T) {
	sn1 := shardSnapshot(t, "a", mergeShard1Rows...)
	sn2 := shardSnapshot(t, "b", mergeShard2Rows...)
	sn2.Mode = snapshot.ModeLazy
	_, err := snapshot.Merge(sn1, sn2)
	if err == nil || !strings.Contains(err.Error(), "shard 1") || !strings.Contains(err.Error(), "eager") {
		t.Fatalf("err = %v, want lazy rejection naming shard 1", err)
	}
}

func TestMergeCutsMismatchNamesAttribute(t *testing.T) {
	sn1 := shardSnapshot(t, "a", mergeShard1Rows...)
	sn2 := shardSnapshot(t, "b", mergeShard2Rows...)
	sn2.Cuts = map[string][]float64{"temp": {1.5, 9.9}}
	_, err := snapshot.Merge(sn1, sn2)
	if err == nil || !strings.Contains(err.Error(), `"temp"`) {
		t.Fatalf("err = %v, want cut mismatch naming \"temp\"", err)
	}
}

func TestMergeNilShard(t *testing.T) {
	sn := shardSnapshot(t, "a", mergeShard1Rows...)
	if _, err := snapshot.Merge(sn, nil); err == nil || !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("err = %v, want nil shard error naming shard 1", err)
	}
	if _, err := snapshot.Merge(); err == nil {
		t.Fatal("zero shards should error")
	}
}

func TestMergeFiles(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "shard1.omapsnap")
	p2 := filepath.Join(dir, "shard2.omapsnap")
	dst := filepath.Join(dir, "merged.omapsnap")
	if err := snapshot.WriteFile(p1, shardSnapshot(t, "a", mergeShard1Rows...)); err != nil {
		t.Fatal(err)
	}
	if err := snapshot.WriteFile(p2, shardSnapshot(t, "b", mergeShard2Rows...)); err != nil {
		t.Fatal(err)
	}
	if err := snapshot.MergeFiles(dst, p1, p2); err != nil {
		t.Fatal(err)
	}
	got, err := snapshot.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(mergeShard1Rows) + len(mergeShard2Rows); got.Rows != want {
		t.Errorf("merged file Rows = %d, want %d", got.Rows, want)
	}
}

// TestMergeFilesAcceptsVersion1: a fleet upgraded mid-stream may hand
// the merger a mix of format versions; any version Read accepts must
// merge. The v1 fixture is synthesized the same way TestReadsVersion1
// does: strip the IngestSeq field, re-stamp version and checksum.
func TestMergeFilesAcceptsVersion1(t *testing.T) {
	sn1 := shardSnapshot(t, "a", mergeShard1Rows...)
	sn1.IngestSeq = 5
	b := encode(t, sn1)

	off := len(snapshot.Magic)
	ver, n := binary.Uvarint(b[off:])
	if ver != 2 || n != 1 {
		t.Fatalf("version field = %d (%d bytes), want 2 (1 byte)", ver, n)
	}
	b[off] = 1
	off += n
	l, n := binary.Uvarint(b[off:]) // SourceHash string
	off += n + int(l)
	for i := 0; i < 3; i++ { // CreatedUnix, Rows, Mode
		_, n = binary.Uvarint(b[off:])
		off += n
	}
	_, n = binary.Varint(b[off:]) // CacheBytes (signed)
	off += n
	seq, n := binary.Uvarint(b[off:])
	if seq != 5 {
		t.Fatalf("located field = %d, want IngestSeq 5", seq)
	}
	v1 := append(append([]byte{}, b[:off]...), b[off+n:]...)
	binary.LittleEndian.PutUint32(v1[len(v1)-4:], crc32.ChecksumIEEE(v1[:len(v1)-4]))

	dir := t.TempDir()
	p1 := filepath.Join(dir, "v1.omapsnap")
	p2 := filepath.Join(dir, "v2.omapsnap")
	dst := filepath.Join(dir, "merged.omapsnap")
	if err := os.WriteFile(p1, v1, 0o600); err != nil {
		t.Fatal(err)
	}
	sn2 := shardSnapshot(t, "b", mergeShard2Rows...)
	sn2.IngestSeq = 9
	if err := snapshot.WriteFile(p2, sn2); err != nil {
		t.Fatal(err)
	}
	if err := snapshot.MergeFiles(dst, p1, p2); err != nil {
		t.Fatalf("merging v1+v2 shards: %v", err)
	}
	got, err := snapshot.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if got.IngestSeq != 9 {
		t.Errorf("IngestSeq = %d, want 9 (v1 shard contributes 0)", got.IngestSeq)
	}
}

func TestMergeFilesErrors(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.omapsnap")
	if err := snapshot.WriteFile(good, shardSnapshot(t, "a", mergeShard1Rows...)); err != nil {
		t.Fatal(err)
	}

	t.Run("corrupt shard names path", func(t *testing.T) {
		bad := filepath.Join(dir, "bad.omapsnap")
		raw := encode(t, shardSnapshot(t, "b", mergeShard2Rows...))
		raw[len(raw)/2] ^= 0x20
		if err := os.WriteFile(bad, raw, 0o600); err != nil {
			t.Fatal(err)
		}
		dst := filepath.Join(dir, "out1.omapsnap")
		err := snapshot.MergeFiles(dst, good, bad)
		if err == nil || !strings.Contains(err.Error(), bad) {
			t.Fatalf("err = %v, want corrupt-shard error naming %s", err, bad)
		}
		if _, statErr := os.Stat(dst); !os.IsNotExist(statErr) {
			t.Error("dst written despite merge error")
		}
	})

	t.Run("dst preserved on error", func(t *testing.T) {
		dst := filepath.Join(dir, "out2.omapsnap")
		if err := os.WriteFile(dst, []byte("previous"), 0o600); err != nil {
			t.Fatal(err)
		}
		missing := filepath.Join(dir, "missing.omapsnap")
		if err := snapshot.MergeFiles(dst, good, missing); err == nil {
			t.Fatal("expected error for missing shard")
		}
		content, err := os.ReadFile(dst)
		if err != nil || string(content) != "previous" {
			t.Errorf("dst content = %q, %v; want previous content intact", content, err)
		}
	})

	t.Run("schema mismatch names attribute", func(t *testing.T) {
		b, err := dataset.NewBuilder(dataset.Schema{
			Attrs: []dataset.Attribute{
				{Name: "phone", Kind: dataset.Categorical},
				{Name: "region", Kind: dataset.Categorical},
				{Name: "dropped", Kind: dataset.Categorical},
			},
			ClassIndex: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := b.AddRow([]string{"p1", "west", "yes"}); err != nil {
			t.Fatal(err)
		}
		ds, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		other := filepath.Join(dir, "other.omapsnap")
		if err := snapshot.WriteFile(other, &snapshot.Snapshot{
			SourceHash: snapshot.HashBytes([]byte("c")),
			Rows:       1,
			Mode:       snapshot.ModeEager,
			Cuts:       map[string][]float64{"temp": {1.5, 2.5}},
			Dataset:    ds,
			Store:      store,
		}); err != nil {
			t.Fatal(err)
		}
		err = snapshot.MergeFiles(filepath.Join(dir, "out3.omapsnap"), good, other)
		if err == nil || !strings.Contains(err.Error(), `"location"`) {
			t.Fatalf("err = %v, want schema mismatch naming \"location\"", err)
		}
	})
}

// FuzzMergeSnapshots feeds arbitrary byte pairs to the file-level merge:
// corrupt, truncated, or incompatible shard inputs must error (naming
// the offending shard), never panic — and valid pairs must produce a
// snapshot that reads back.
func FuzzMergeSnapshots(f *testing.F) {
	valid1 := encode(f, shardSnapshot(f, "fuzz-1", mergeShard1Rows...))
	valid2 := encode(f, shardSnapshot(f, "fuzz-2", mergeShard2Rows...))
	f.Add(append([]byte(nil), valid1...), append([]byte(nil), valid2...))
	f.Add(valid1[:len(valid1)/2], append([]byte(nil), valid2...))
	f.Add([]byte{}, []byte(snapshot.Magic))
	mutated := append([]byte(nil), valid1...)
	mutated[len(mutated)/3] ^= 0x40
	f.Add(mutated, append([]byte(nil), valid2...))
	// A dict-mismatched pair: different schema entirely.
	other := encode(f, func() *snapshot.Snapshot {
		b, err := dataset.NewBuilder(dataset.Schema{
			Attrs:      []dataset.Attribute{{Name: "x", Kind: dataset.Categorical}},
			ClassIndex: 0,
		})
		if err != nil {
			f.Fatal(err)
		}
		ds, err := b.Build()
		if err != nil {
			f.Fatal(err)
		}
		store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{})
		if err != nil {
			f.Fatal(err)
		}
		return &snapshot.Snapshot{Mode: snapshot.ModeEager, Dataset: ds, Store: store}
	}())
	f.Add(append([]byte(nil), valid1...), other)

	f.Fuzz(func(t *testing.T, a, b []byte) {
		dir := t.TempDir()
		p1 := filepath.Join(dir, "a.omapsnap")
		p2 := filepath.Join(dir, "b.omapsnap")
		dst := filepath.Join(dir, "out.omapsnap")
		if err := os.WriteFile(p1, a, 0o600); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p2, b, 0o600); err != nil {
			t.Fatal(err)
		}
		if err := snapshot.MergeFiles(dst, p1, p2); err != nil {
			// Errors are expected for hostile inputs; the merged output
			// must simply not exist.
			if _, statErr := os.Stat(dst); !os.IsNotExist(statErr) {
				t.Fatal("dst written despite merge error")
			}
			return
		}
		// A successful merge must read back cleanly.
		if _, err := snapshot.ReadFile(dst); err != nil {
			t.Fatalf("merged output does not read back: %v", err)
		}
	})
}
