package snapshot_test

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"reflect"
	"strings"
	"testing"

	"opmap/internal/dataset"
	"opmap/internal/rulecube"
	"opmap/internal/snapshot"
)

// testDataset builds a small fully categorical dataset: two condition
// attributes plus the class.
func testDataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	b, err := dataset.NewBuilder(dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "phone", Kind: dataset.Categorical},
			{Name: "location", Kind: dataset.Categorical},
			{Name: "dropped", Kind: dataset.Categorical},
		},
		ClassIndex: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	b.WithDict(0, dataset.DictionaryOf("p1", "p2", "p3"))
	b.WithDict(1, dataset.DictionaryOf("north", "south"))
	b.WithDict(2, dataset.DictionaryOf("yes", "no"))
	add := func(p, l, c string, n int) {
		for i := 0; i < n; i++ {
			if err := b.AddRow([]string{p, l, c}); err != nil {
				t.Fatal(err)
			}
		}
	}
	add("p1", "north", "yes", 10)
	add("p1", "south", "no", 90)
	add("p2", "north", "yes", 40)
	add("p2", "south", "no", 60)
	add("p3", "north", "no", 50)
	add("p3", "south", "yes", 50)
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// testSnapshot builds a complete eager snapshot over testDataset.
func testSnapshot(t testing.TB) *snapshot.Snapshot {
	t.Helper()
	ds := testDataset(t)
	store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return &snapshot.Snapshot{
		SourceHash:  snapshot.HashBytes([]byte("test-source")),
		CreatedUnix: 1754000000,
		Rows:        ds.NumRows(),
		Mode:        snapshot.ModeEager,
		Cuts:        map[string][]float64{"temp": {1.5, 2.5}, "pressure": {0.25}},
		Dataset:     ds,
		Store:       store,
	}
}

func encode(t testing.TB, snap *snapshot.Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	want := testSnapshot(t)
	raw := encode(t, want)
	got, err := snapshot.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.SourceHash != want.SourceHash {
		t.Errorf("SourceHash = %q, want %q", got.SourceHash, want.SourceHash)
	}
	if got.CreatedUnix != want.CreatedUnix {
		t.Errorf("CreatedUnix = %d, want %d", got.CreatedUnix, want.CreatedUnix)
	}
	if got.Rows != want.Rows {
		t.Errorf("Rows = %d, want %d", got.Rows, want.Rows)
	}
	if got.Mode != snapshot.ModeEager {
		t.Errorf("Mode = %v, want eager", got.Mode)
	}
	if !reflect.DeepEqual(got.Cuts, want.Cuts) {
		t.Errorf("Cuts = %v, want %v", got.Cuts, want.Cuts)
	}
	// Schema fidelity: names, kinds, class, dictionaries.
	if got.Dataset.NumAttrs() != want.Dataset.NumAttrs() {
		t.Fatalf("NumAttrs = %d, want %d", got.Dataset.NumAttrs(), want.Dataset.NumAttrs())
	}
	if got.Dataset.ClassIndex() != want.Dataset.ClassIndex() {
		t.Errorf("ClassIndex = %d, want %d", got.Dataset.ClassIndex(), want.Dataset.ClassIndex())
	}
	if got.Dataset.NumRows() != 0 {
		t.Errorf("restored dataset has %d rows, want 0 (schema-only)", got.Dataset.NumRows())
	}
	for i := 0; i < want.Dataset.NumAttrs(); i++ {
		if got.Dataset.Attr(i) != want.Dataset.Attr(i) {
			t.Errorf("attr %d = %+v, want %+v", i, got.Dataset.Attr(i), want.Dataset.Attr(i))
		}
		wd, gd := want.Dataset.Column(i).Dict, got.Dataset.Column(i).Dict
		if !reflect.DeepEqual(wd.Labels(), gd.Labels()) {
			t.Errorf("attr %d labels = %v, want %v", i, gd.Labels(), wd.Labels())
		}
	}
	// Cube fidelity: re-serializing the rebound store must reproduce the
	// original store stream byte for byte.
	var wantStore, gotStore bytes.Buffer
	if err := rulecube.WriteStore(&wantStore, want.Store); err != nil {
		t.Fatal(err)
	}
	if err := rulecube.WriteStore(&gotStore, got.Store); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantStore.Bytes(), gotStore.Bytes()) {
		t.Error("restored store stream differs from the original")
	}
	// And a second snapshot write must be deterministic.
	if !bytes.Equal(raw, encode(t, got)) {
		t.Error("re-snapshotting the restored snapshot is not byte-identical")
	}
}

// TestReadsVersion1 guards backward compatibility: a version-1 file
// (written before the header carried an ingest sequence) must still
// load, with IngestSeq defaulting to zero. The fixture is synthesized
// by stripping the IngestSeq field out of a freshly written version-2
// stream and re-stamping version and checksum.
func TestReadsVersion1(t *testing.T) {
	snap := testSnapshot(t)
	snap.IngestSeq = 99
	b := encode(t, snap)

	// Walk the header fields to find the IngestSeq uvarint.
	off := len(snapshot.Magic)
	ver, n := binary.Uvarint(b[off:])
	if ver != 2 || n != 1 {
		t.Fatalf("version field = %d (%d bytes), want 2 (1 byte)", ver, n)
	}
	b[off] = 1 // re-stamp as version 1
	off += n
	l, n := binary.Uvarint(b[off:]) // SourceHash string
	off += n + int(l)
	for i := 0; i < 3; i++ { // CreatedUnix, Rows, Mode
		_, n = binary.Uvarint(b[off:])
		off += n
	}
	_, n = binary.Varint(b[off:]) // CacheBytes (signed)
	off += n
	seq, n := binary.Uvarint(b[off:])
	if seq != 99 {
		t.Fatalf("located field = %d, want IngestSeq 99", seq)
	}
	v1 := append(append([]byte{}, b[:off]...), b[off+n:]...)
	binary.LittleEndian.PutUint32(v1[len(v1)-4:], crc32.ChecksumIEEE(v1[:len(v1)-4]))

	got, err := snapshot.Read(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("reading synthesized v1 stream: %v", err)
	}
	if got.IngestSeq != 0 {
		t.Errorf("v1 IngestSeq = %d, want 0", got.IngestSeq)
	}
	if got.Rows != snap.Rows || got.SourceHash != snap.SourceHash {
		t.Errorf("v1 header = rows %d hash %q, want rows %d hash %q",
			got.Rows, got.SourceHash, snap.Rows, snap.SourceHash)
	}
	h, err := snapshot.PeekHeader(bytes.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != 1 || h.IngestSeq != 0 {
		t.Errorf("peeked version=%d ingestSeq=%d, want 1/0", h.Version, h.IngestSeq)
	}
}

func TestPeekHeader(t *testing.T) {
	want := testSnapshot(t)
	want.Mode = snapshot.ModeLazy
	want.CacheBytes = -1
	raw := encode(t, want)
	h, err := snapshot.PeekHeader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != snapshot.Version {
		t.Errorf("Version = %d, want %d", h.Version, snapshot.Version)
	}
	if h.SourceHash != want.SourceHash || h.CreatedUnix != want.CreatedUnix || h.Rows != want.Rows {
		t.Errorf("header = %+v, want hash %q created %d rows %d", h, want.SourceHash, want.CreatedUnix, want.Rows)
	}
	if h.Mode != snapshot.ModeLazy || h.CacheBytes != -1 {
		t.Errorf("mode/cache = %v/%d, want lazy/-1", h.Mode, h.CacheBytes)
	}
	// Peek must not need more than the header: it works on a prefix.
	if _, err := snapshot.PeekHeader(bytes.NewReader(raw[:96])); err != nil {
		t.Errorf("peek on header-sized prefix failed: %v", err)
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	valid := encode(t, testSnapshot(t))

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{0, 4, len(valid) / 4, len(valid) / 2, len(valid) - 1} {
			if _, err := snapshot.Read(bytes.NewReader(valid[:cut])); err == nil {
				t.Errorf("truncation at %d bytes accepted", cut)
			}
		}
	})

	t.Run("bit-flip", func(t *testing.T) {
		// CRC32 catches every single-bit error; flips in length prefixes
		// may fail earlier with a bounds or structure error. Either way:
		// an error, never a panic, never success.
		mutated := make([]byte, len(valid))
		for i := range valid {
			copy(mutated, valid)
			mutated[i] ^= 0x10
			if _, err := snapshot.Read(bytes.NewReader(mutated)); err == nil {
				t.Fatalf("bit flip at byte %d accepted", i)
			}
		}
	})

	t.Run("wrong-magic", func(t *testing.T) {
		_, err := snapshot.Read(strings.NewReader("NOTASNAPxxxxxxxx"))
		if err == nil || !strings.Contains(err.Error(), "magic") {
			t.Errorf("want bad-magic error, got %v", err)
		}
	})

	t.Run("wrong-version", func(t *testing.T) {
		var buf bytes.Buffer
		buf.WriteString(snapshot.Magic)
		var v [binary.MaxVarintLen64]byte
		buf.Write(v[:binary.PutUvarint(v[:], 99)])
		_, err := snapshot.Read(&buf)
		if err == nil || !strings.Contains(err.Error(), "version") {
			t.Errorf("want version error, got %v", err)
		}
	})

	t.Run("oversized-length", func(t *testing.T) {
		// A hostile uvarint claiming a 1 GiB source-hash string must be
		// rejected by the bound, not attempted as an allocation.
		var buf bytes.Buffer
		buf.WriteString(snapshot.Magic)
		var v [binary.MaxVarintLen64]byte
		buf.Write(v[:binary.PutUvarint(v[:], snapshot.Version)])
		buf.Write(v[:binary.PutUvarint(v[:], 1<<30)])
		_, err := snapshot.Read(&buf)
		if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
			t.Errorf("want bounds error, got %v", err)
		}
	})

	t.Run("oversized-store-block", func(t *testing.T) {
		// Declare a store block far larger than the stream: the copy must
		// stop at EOF with a truncation error, not allocate the claim.
		idx := bytes.Index(valid, []byte("OMAPCUBE"))
		if idx < 0 {
			t.Fatal("embedded store magic not found")
		}
		var buf bytes.Buffer
		// The store length prefix immediately precedes the embedded
		// magic: its final varint byte is valid[idx-1] (high bit clear),
		// preceded by continuation bytes with the high bit set.
		start := idx - 1
		for start > 0 && valid[start-1]&0x80 != 0 {
			start--
		}
		buf.Write(valid[:start])
		var v [binary.MaxVarintLen64]byte
		buf.Write(v[:binary.PutUvarint(v[:], uint64(1)<<31)])
		buf.Write(valid[idx:])
		_, err := snapshot.Read(&buf)
		if err == nil {
			t.Error("oversized store block accepted")
		}
	})
}

func TestWriteRejectsIncomplete(t *testing.T) {
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, nil); err == nil {
		t.Error("nil snapshot accepted")
	}
	snap := testSnapshot(t)
	snap.Store = nil
	if err := snapshot.Write(&buf, snap); err == nil {
		t.Error("snapshot without store accepted")
	}
	snap = testSnapshot(t)
	snap.Mode = 0
	if err := snapshot.Write(&buf, snap); err == nil {
		t.Error("snapshot without mode accepted")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/snap.omapsnap"
	snap := testSnapshot(t)
	if err := snapshot.WriteFile(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := snapshot.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != snap.Rows {
		t.Errorf("Rows = %d, want %d", got.Rows, snap.Rows)
	}
}

func TestHashHelpers(t *testing.T) {
	if h := snapshot.HashBytes([]byte("abc")); len(h) != 64 {
		t.Errorf("HashBytes length = %d, want 64 hex chars", len(h))
	}
	if snapshot.HashBytes([]byte("a")) == snapshot.HashBytes([]byte("b")) {
		t.Error("distinct inputs hash equal")
	}
	dir := t.TempDir()
	path := dir + "/src.csv"
	writeTestFile(t, path, "a,b\n1,2\n")
	h1, err := snapshot.HashFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != snapshot.HashBytes([]byte("a,b\n1,2\n")) {
		t.Error("HashFile disagrees with HashBytes over identical content")
	}
}

func writeTestFile(t testing.TB, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
}

func FuzzReadSnapshot(f *testing.F) {
	snap := testSnapshot(f)
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, snap); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(append([]byte(nil), valid...))
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(snapshot.Magic))
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)/3] ^= 0x40
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := snapshot.Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed snapshot must answer basic queries
		// without panicking.
		_ = snap.Mode.String()
		for _, a := range snap.Store.Attrs() {
			if c := snap.Store.Cube1(a); c != nil {
				_ = c.ClassMarginals()
				_ = c.RuleCount()
			}
		}
	})
}
