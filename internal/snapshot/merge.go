package snapshot

import (
	"fmt"
	"math"
	"strings"
)

// OMAPSNAP shard-merge: N processes each cube a slice of the logs and
// write ordinary snapshot files; one serving daemon assembles them into
// a single snapshot. Contingency counts are additive, so the assembly
// is exact — dictionaries union (new labels append in shard order),
// cube counts remap through the union and sum (rulecube.Store.Merge),
// row counts add, ingest sequences reconcile to the maximum. Merging
// the shards of a row-partitioned dataset, in partition order,
// reproduces bit-for-bit the store a single pass over the whole dataset
// would have built.

// Merge assembles shard snapshots into one serving snapshot, in
// argument order. The first shard is the merge destination: its dataset
// dictionaries and store are grown in place and returned inside the
// merged snapshot (callers needing the input intact should re-read it).
// Later shards are never modified.
//
// Every shard must be ModeEager — a lazy snapshot holds only the cubes
// resident at capture time, so merging one would silently undercount.
// Discretization cut points must be bit-identical across shards (the
// same cuts fed to every shard build); a mismatch errors naming the
// attribute. Header fields reconcile as: rows sum, ingest sequence and
// created time take the maximum, cache bytes reset to zero (eager), and
// the source hash becomes HashBytes over the newline-joined shard
// hashes in merge order — a deterministic identity for the ordered
// shard set.
func Merge(snaps ...*Snapshot) (*Snapshot, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("snapshot: merge needs at least one shard")
	}
	for i, sn := range snaps {
		if sn == nil || sn.Dataset == nil || sn.Store == nil {
			return nil, fmt.Errorf("snapshot: shard %d: missing dataset or store", i)
		}
		if sn.Mode != ModeEager {
			return nil, fmt.Errorf("snapshot: shard %d: mode %s: only eager snapshots merge (a lazy snapshot holds only its resident cubes and would undercount)", i, sn.Mode)
		}
	}
	first := snaps[0]
	rows := first.Rows
	seq := first.IngestSeq
	created := first.CreatedUnix
	hashes := make([]string, 0, len(snaps))
	hashes = append(hashes, first.SourceHash)
	for i, sn := range snaps[1:] {
		if err := compatibleCuts(first.Cuts, sn.Cuts); err != nil {
			return nil, fmt.Errorf("snapshot: shard %d: %w", i+1, err)
		}
		if err := first.Store.Merge(sn.Store); err != nil {
			return nil, fmt.Errorf("snapshot: shard %d: %w", i+1, err)
		}
		rows += sn.Rows
		if sn.IngestSeq > seq {
			seq = sn.IngestSeq
		}
		if sn.CreatedUnix > created {
			created = sn.CreatedUnix
		}
		hashes = append(hashes, sn.SourceHash)
	}
	return &Snapshot{
		SourceHash:  HashBytes([]byte(strings.Join(hashes, "\n"))),
		CreatedUnix: created,
		Rows:        rows,
		Mode:        ModeEager,
		IngestSeq:   seq,
		Cuts:        first.Cuts,
		Dataset:     first.Dataset,
		Store:       first.Store,
	}, nil
}

// MergeFiles reads the shard snapshots at srcs (any mix of format
// versions Read accepts), merges them in argument order, and writes the
// result to dst through internal/atomicfile — a crash mid-write leaves
// any previous file at dst intact. Corrupt, truncated, or incompatible
// shards error naming the shard path and the offending block or
// attribute; dst is not touched on any error.
func MergeFiles(dst string, srcs ...string) error {
	if len(srcs) == 0 {
		return fmt.Errorf("snapshot: merge needs at least one shard")
	}
	snaps := make([]*Snapshot, len(srcs))
	for i, p := range srcs {
		sn, err := ReadFile(p)
		if err != nil {
			return fmt.Errorf("snapshot: shard %s: %w", p, err)
		}
		snaps[i] = sn
	}
	merged, err := Merge(snaps...)
	if err != nil {
		return err
	}
	return WriteFile(dst, merged)
}

// compatibleCuts requires bit-identical cut points across shards,
// naming the first attribute that differs. Shards discretized with
// different cuts count different intervals; summing those cubes would
// be semantically meaningless, so the merge refuses.
func compatibleCuts(a, b map[string][]float64) error {
	for name, av := range a {
		bv, ok := b[name]
		if !ok {
			return fmt.Errorf("cut points for %q missing", name)
		}
		if len(av) != len(bv) {
			return fmt.Errorf("cut points for %q differ: %d vs %d points", name, len(av), len(bv))
		}
		for i := range av {
			if math.Float64bits(av[i]) != math.Float64bits(bv[i]) {
				return fmt.Errorf("cut points for %q differ at point %d", name, i)
			}
		}
	}
	for name := range b {
		if _, ok := a[name]; !ok {
			return fmt.Errorf("unexpected cut points for %q", name)
		}
	}
	return nil
}
