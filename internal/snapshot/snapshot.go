// Package snapshot implements the durable session snapshot: everything
// a serving session needs to answer Compare/Sweep/Impressions queries —
// dataset schema and dictionaries, discretization cut points, the rule
// cubes, and engine metadata — in one versioned, checksummed file. The
// deployed Opportunity Map generates cubes offline and serves analysts
// from them the next day (Section V.C of the paper); a snapshot lets
// opmapd warm-start in milliseconds instead of re-counting every cube
// from CSV. The header records a content hash of the source data so a
// loader can detect stale snapshots, and every write goes through
// internal/atomicfile so a crash can never clobber a good snapshot.
//
// Layout (all integers varint-encoded, little-endian where fixed):
//
//	magic "OMAPSNAP" | version | header (source hash, created, rows,
//	mode, cache bytes) | schema block (attrs: name, kind, dictionary) |
//	cuts block | store block (length-prefixed rulecube stream) |
//	CRC32 trailer
//
// The store block reuses the rulecube.WriteStore wire format verbatim,
// length-prefixed so the embedded stream's own buffering cannot consume
// snapshot bytes past the block. Readers bound every declared length
// before allocating, so corrupt or hostile streams fail with a clear
// error instead of driving huge allocations.
package snapshot

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"

	"opmap/internal/atomicfile"
	"opmap/internal/dataset"
	"opmap/internal/rulecube"
)

const (
	// Magic is the 8-byte file signature opening every snapshot.
	Magic = "OMAPSNAP"
	// Version is the format version this package writes. Version 2
	// added the ingest sequence number to the header; version-1 files
	// (no sequence field) still read fine and report sequence zero.
	Version = 2

	// maxStringLen bounds every length-prefixed string on read (names,
	// labels, the source hash). 1 MiB is far past any real value and
	// small enough that a corrupt length cannot drive a big allocation.
	maxStringLen = 1 << 20
	// maxDictEntries bounds dictionary sizes on read: at most one entry
	// per dataset row, and 16M distinct labels is past any served data.
	maxDictEntries = 1 << 24
	// maxAttrs bounds the schema's attribute count on read.
	maxAttrs = 1 << 20
	// maxCutPoints bounds the cut points of one discretized attribute.
	maxCutPoints = 1 << 20
	// maxRows bounds the recorded row count.
	maxRows = 1 << 40
	// maxStoreBytes bounds the embedded cube-store block.
	maxStoreBytes = int64(1) << 32
)

// Mode records which engine the snapshotted session ran.
type Mode uint8

const (
	// ModeEager marks a snapshot holding the full materialized store; a
	// loader can serve from it standalone.
	ModeEager Mode = 1
	// ModeLazy marks a snapshot holding only the cubes resident when it
	// was taken; a loader seeds them into a fresh lazy engine over the
	// source data.
	ModeLazy Mode = 2
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeEager:
		return "eager"
	case ModeLazy:
		return "lazy"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Snapshot is the in-memory form of one session snapshot.
type Snapshot struct {
	// SourceHash is the content hash of the source data (HashFile /
	// HashBytes), recorded so loaders can detect staleness. Empty means
	// unknown: never stale, never fresh — loader policy decides.
	SourceHash string
	// CreatedUnix is when the snapshot was taken (Unix seconds).
	CreatedUnix int64
	// Rows is the source row count; snapshot-loaded datasets are
	// schema-only, so this is the only place the count survives.
	Rows int
	// Mode is the engine the session ran (eager or lazy).
	Mode Mode
	// CacheBytes is the lazy 2-D cube budget (ModeLazy only; negative
	// means unlimited).
	CacheBytes int64
	// IngestSeq is the WAL sequence number of the last append batch the
	// session had applied when the snapshot was taken; recovery replays
	// the WAL from IngestSeq+1. Zero for sessions never fed from a WAL
	// and for version-1 snapshots.
	IngestSeq uint64
	// Cuts are the discretization cut points per attribute name.
	Cuts map[string][]float64
	// Dataset carries the schema and dictionaries. On write any dataset
	// with the right schema serves (rows are not serialized); on read it
	// is a freshly built zero-row dataset.
	Dataset *dataset.Dataset
	// Store holds the cubes: all of them for ModeEager, the resident
	// subset for ModeLazy. On read it is rebound to Dataset.
	Store *rulecube.Store
}

// Header is the cheaply readable prefix of a snapshot, enough for a
// staleness decision without decoding cubes. PeekHeader does not verify
// the trailing CRC — treat the fields as advisory until a full Read.
type Header struct {
	Version     int
	SourceHash  string
	CreatedUnix int64
	Rows        int
	Mode        Mode
	CacheBytes  int64
	IngestSeq   uint64
}

type crcWriter struct {
	w   *bufio.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

type crcReader struct {
	r   *bufio.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

func (c *crcReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.crc = crc32.Update(c.crc, crc32.IEEETable, []byte{b})
	}
	return b, err
}

func writeUvarint(w io.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeVarint(w io.Writer, v int64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeString(w io.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

// readString reads one length-prefixed string, rejecting lengths over
// maxStringLen before allocating. block names the stream section for
// corrupt-file errors.
func readString(r *crcReader, block string) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", fmt.Errorf("snapshot: %s: %w", block, err)
	}
	if n > maxStringLen {
		return "", fmt.Errorf("snapshot: %s: string length %d exceeds limit %d; corrupt stream", block, n, maxStringLen)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("snapshot: %s: %w", block, err)
	}
	return string(buf), nil
}

func readBoundedUvarint(r *crcReader, limit uint64, block string) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("snapshot: %s: %w", block, err)
	}
	if v > limit {
		return 0, fmt.Errorf("snapshot: %s: value %d exceeds limit %d; corrupt stream", block, v, limit)
	}
	return v, nil
}

// Write serializes the snapshot to w. See the package comment for the
// layout. The caller supplies a complete Snapshot; Dataset and Store
// must be non-nil and Mode valid.
func Write(w io.Writer, snap *Snapshot) error {
	if snap == nil || snap.Dataset == nil || snap.Store == nil {
		return fmt.Errorf("snapshot: write needs a snapshot with dataset and store")
	}
	if snap.Mode != ModeEager && snap.Mode != ModeLazy {
		return fmt.Errorf("snapshot: invalid mode %d", snap.Mode)
	}
	cw := &crcWriter{w: bufio.NewWriter(w)}
	if _, err := io.WriteString(cw, Magic); err != nil {
		return err
	}
	if err := writeUvarint(cw, Version); err != nil {
		return err
	}

	// Header.
	if err := writeString(cw, snap.SourceHash); err != nil {
		return err
	}
	created := snap.CreatedUnix
	if created < 0 {
		created = 0
	}
	if err := writeUvarint(cw, uint64(created)); err != nil {
		return err
	}
	if err := writeUvarint(cw, uint64(snap.Rows)); err != nil {
		return err
	}
	if err := writeUvarint(cw, uint64(snap.Mode)); err != nil {
		return err
	}
	if err := writeVarint(cw, snap.CacheBytes); err != nil {
		return err
	}
	if err := writeUvarint(cw, snap.IngestSeq); err != nil {
		return err
	}

	// Schema block: every attribute with its dictionary, so the loader
	// rebuilds the full working dataset, not just the cube-covered part.
	ds := snap.Dataset
	if err := writeUvarint(cw, uint64(ds.NumAttrs())); err != nil {
		return err
	}
	if err := writeUvarint(cw, uint64(ds.ClassIndex())); err != nil {
		return err
	}
	for i := 0; i < ds.NumAttrs(); i++ {
		a := ds.Attr(i)
		if err := writeString(cw, a.Name); err != nil {
			return err
		}
		if err := writeUvarint(cw, uint64(a.Kind)); err != nil {
			return err
		}
		var labels []string
		if d := ds.Column(i).Dict; d != nil {
			labels = d.Labels()
		}
		if err := writeUvarint(cw, uint64(len(labels))); err != nil {
			return err
		}
		for _, l := range labels {
			if err := writeString(cw, l); err != nil {
				return err
			}
		}
	}

	// Cuts block, in sorted attribute order for deterministic output.
	names := make([]string, 0, len(snap.Cuts))
	for n := range snap.Cuts {
		names = append(names, n)
	}
	sort.Strings(names)
	if err := writeUvarint(cw, uint64(len(names))); err != nil {
		return err
	}
	var f64 [8]byte
	for _, n := range names {
		if err := writeString(cw, n); err != nil {
			return err
		}
		pts := snap.Cuts[n]
		if err := writeUvarint(cw, uint64(len(pts))); err != nil {
			return err
		}
		for _, p := range pts {
			binary.LittleEndian.PutUint64(f64[:], math.Float64bits(p))
			if _, err := cw.Write(f64[:]); err != nil {
				return err
			}
		}
	}

	// Store block, length-prefixed so the reader can hand the embedded
	// stream exactly its own bytes.
	var sb bytes.Buffer
	if err := rulecube.WriteStore(&sb, snap.Store); err != nil {
		return err
	}
	if err := writeUvarint(cw, uint64(sb.Len())); err != nil {
		return err
	}
	if _, err := cw.Write(sb.Bytes()); err != nil {
		return err
	}

	// Trailer: CRC of everything written so far.
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], cw.crc)
	if _, err := cw.w.Write(tr[:]); err != nil {
		return err
	}
	return cw.w.Flush()
}

// WriteFile writes the snapshot to path atomically: staged next to the
// destination, synced, renamed. A crash mid-write leaves any previous
// snapshot at path intact.
func WriteFile(path string, snap *Snapshot) error {
	return atomicfile.WriteFile(path, func(w io.Writer) error {
		return Write(w, snap)
	})
}

// readHeader parses magic, version and the header fields from cr.
func readHeader(cr *crcReader) (*Header, error) {
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("snapshot: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic %q (not a snapshot file)", magic)
	}
	ver, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading version: %w", err)
	}
	if ver != 1 && ver != Version {
		return nil, fmt.Errorf("snapshot: unsupported version %d (this build reads 1..%d)", ver, Version)
	}
	hash, err := readString(cr, "header source hash")
	if err != nil {
		return nil, err
	}
	created, err := readBoundedUvarint(cr, math.MaxInt64, "header created")
	if err != nil {
		return nil, err
	}
	rows, err := readBoundedUvarint(cr, maxRows, "header rows")
	if err != nil {
		return nil, err
	}
	mode, err := readBoundedUvarint(cr, uint64(ModeLazy), "header mode")
	if err != nil {
		return nil, err
	}
	if Mode(mode) != ModeEager && Mode(mode) != ModeLazy {
		return nil, fmt.Errorf("snapshot: header mode %d is not eager(1) or lazy(2)", mode)
	}
	cacheBytes, err := binary.ReadVarint(cr)
	if err != nil {
		return nil, fmt.Errorf("snapshot: header cache bytes: %w", err)
	}
	var ingestSeq uint64
	if ver >= 2 {
		ingestSeq, err = binary.ReadUvarint(cr)
		if err != nil {
			return nil, fmt.Errorf("snapshot: header ingest sequence: %w", err)
		}
	}
	return &Header{
		Version:     int(ver),
		SourceHash:  hash,
		CreatedUnix: int64(created),
		Rows:        int(rows),
		Mode:        Mode(mode),
		CacheBytes:  cacheBytes,
		IngestSeq:   ingestSeq,
	}, nil
}

// Read deserializes a snapshot written with Write, verifying the CRC
// trailer, rebuilding the schema-only dataset and rebinding the cube
// store to it. Corrupt, truncated or over-declared streams fail with an
// error naming the offending block; no input can make Read panic or
// allocate past the documented bounds.
func Read(r io.Reader) (*Snapshot, error) {
	cr := &crcReader{r: bufio.NewReader(r)}
	h, err := readHeader(cr)
	if err != nil {
		return nil, err
	}

	// Schema block.
	nAttrs, err := readBoundedUvarint(cr, maxAttrs, "schema attribute count")
	if err != nil {
		return nil, err
	}
	classIdx, err := readBoundedUvarint(cr, maxAttrs, "schema class index")
	if err != nil {
		return nil, err
	}
	if classIdx >= nAttrs {
		return nil, fmt.Errorf("snapshot: class index %d outside schema of %d attributes", classIdx, nAttrs)
	}
	attrs := make([]dataset.Attribute, nAttrs)
	dicts := make([]*dataset.Dictionary, nAttrs)
	for i := range attrs {
		block := fmt.Sprintf("schema attribute %d", i)
		name, err := readString(cr, block+" name")
		if err != nil {
			return nil, err
		}
		kind, err := readBoundedUvarint(cr, uint64(dataset.Continuous), block+" kind")
		if err != nil {
			return nil, err
		}
		nLabels, err := readBoundedUvarint(cr, maxDictEntries, block+" dictionary")
		if err != nil {
			return nil, err
		}
		d := dataset.NewDictionary()
		for j := uint64(0); j < nLabels; j++ {
			l, err := readString(cr, block+" dictionary")
			if err != nil {
				return nil, err
			}
			d.Code(l)
		}
		attrs[i] = dataset.Attribute{Name: name, Kind: dataset.Kind(kind)}
		if d.Len() > 0 || dataset.Kind(kind) == dataset.Categorical {
			dicts[i] = d
		}
	}
	b, err := dataset.NewBuilder(dataset.Schema{Attrs: attrs, ClassIndex: int(classIdx)})
	if err != nil {
		return nil, fmt.Errorf("snapshot: rebuilding schema: %w", err)
	}
	for i, d := range dicts {
		if d != nil {
			b.WithDict(i, d)
		}
	}
	ds, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("snapshot: rebuilding schema: %w", err)
	}

	// Cuts block.
	nCuts, err := readBoundedUvarint(cr, maxAttrs, "cuts count")
	if err != nil {
		return nil, err
	}
	var cuts map[string][]float64
	if nCuts > 0 {
		cuts = make(map[string][]float64, nCuts)
	}
	var f64 [8]byte
	for i := uint64(0); i < nCuts; i++ {
		block := fmt.Sprintf("cuts entry %d", i)
		name, err := readString(cr, block)
		if err != nil {
			return nil, err
		}
		nPts, err := readBoundedUvarint(cr, maxCutPoints, block)
		if err != nil {
			return nil, err
		}
		pts := make([]float64, nPts)
		for j := range pts {
			if _, err := io.ReadFull(cr, f64[:]); err != nil {
				return nil, fmt.Errorf("snapshot: %s: %w", block, err)
			}
			pts[j] = math.Float64frombits(binary.LittleEndian.Uint64(f64[:]))
		}
		cuts[name] = pts
	}

	// Store block: buffer exactly the declared bytes so the embedded
	// stream's own buffered reader cannot consume past the block, and
	// grow the buffer only with bytes that actually arrive — a hostile
	// length hits EOF, not an allocation.
	storeLen, err := readBoundedUvarint(cr, uint64(maxStoreBytes), "store block length")
	if err != nil {
		return nil, err
	}
	var sb bytes.Buffer
	n, err := io.Copy(&sb, io.LimitReader(cr, int64(storeLen)))
	if err != nil {
		return nil, fmt.Errorf("snapshot: store block: %w", err)
	}
	if uint64(n) != storeLen {
		return nil, fmt.Errorf("snapshot: store block truncated: declared %d bytes, stream had %d", storeLen, n)
	}
	raw, err := rulecube.ReadStore(&sb)
	if err != nil {
		return nil, fmt.Errorf("snapshot: store block: %w", err)
	}

	// Trailer.
	want := cr.crc
	var tr [4]byte
	if _, err := io.ReadFull(cr.r, tr[:]); err != nil {
		return nil, fmt.Errorf("snapshot: reading CRC trailer: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tr[:]); got != want {
		return nil, fmt.Errorf("snapshot: CRC mismatch: stream %08x, computed %08x", got, want)
	}

	// Rebind the store's cubes to the schema dataset so labels have one
	// source of truth (the store block's own reconstruction is partial).
	store, err := rulecube.AssembleStore(ds, raw.Attrs(), raw.Cubes())
	if err != nil {
		return nil, fmt.Errorf("snapshot: store does not match schema: %w", err)
	}

	return &Snapshot{
		SourceHash:  h.SourceHash,
		CreatedUnix: h.CreatedUnix,
		Rows:        h.Rows,
		Mode:        h.Mode,
		CacheBytes:  h.CacheBytes,
		IngestSeq:   h.IngestSeq,
		Cuts:        cuts,
		Dataset:     ds,
		Store:       store,
	}, nil
}

// ReadFile reads and fully verifies the snapshot at path.
func ReadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// PeekHeader reads just the snapshot header — enough for a staleness
// decision without decoding dictionaries or cubes. The CRC trailer is
// NOT verified; a loader that decides to use the snapshot must still go
// through Read.
func PeekHeader(r io.Reader) (*Header, error) {
	cr := &crcReader{r: bufio.NewReader(r)}
	return readHeader(cr)
}

// PeekFile is PeekHeader on a file path.
func PeekFile(path string) (*Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return PeekHeader(f)
}

// HashFile returns the hex SHA-256 of the file's contents — the source
// identity recorded in Snapshot.SourceHash for staleness checks.
func HashFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// HashBytes returns the hex SHA-256 of b — the source identity for
// generated (demo) datasets, hashed over their configuration string.
func HashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
