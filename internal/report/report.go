// Package report renders engineer-facing Markdown reports from analysis
// results. The deployed Opportunity Map's output was consumed by design
// engineers who "investigate what may cause the poor drop rate ... from
// the design point of view"; a written artifact of a comparison — the
// input rules, the ranked attributes, the per-value evidence with its
// statistical qualifiers, and the property attributes set aside — is the
// natural hand-off format.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"opmap/internal/compare"
	"opmap/internal/gi"
)

// Options controls report content.
type Options struct {
	// Title overrides the default heading.
	Title string
	// TopN limits the ranked attributes detailed in full. Zero means 5.
	TopN int
	// MinW hides per-value rows with contribution below this (0 keeps
	// all rows of detailed attributes).
	MinW float64
	// Generated stamps the report; zero omits the timestamp line (keeps
	// golden tests deterministic).
	Generated time.Time
	// Impressions, if non-nil, adds a general-impressions appendix.
	Impressions *gi.Report
}

func (o Options) topN() int {
	if o.TopN == 0 {
		return 5
	}
	return o.TopN
}

// Comparison writes a Markdown report of a comparison result. label1 and
// label2 name the two sub-populations (label1 = lower confidence).
func Comparison(w io.Writer, res *compare.Result, attrName, label1, label2, classLabel string, opts Options) error {
	bw := &errWriter{w: w}

	title := opts.Title
	if title == "" {
		title = fmt.Sprintf("Comparison report: %s=%s vs %s=%s on %q",
			attrName, label1, attrName, label2, classLabel)
	}
	fmt.Fprintf(bw, "# %s\n\n", title)
	if !opts.Generated.IsZero() {
		fmt.Fprintf(bw, "_Generated %s_\n\n", opts.Generated.Format(time.RFC3339))
	}

	fmt.Fprintf(bw, "## Input rules\n\n")
	fmt.Fprintf(bw, "| Sub-population | Records | Class records | Confidence |\n")
	fmt.Fprintf(bw, "|---|---:|---:|---:|\n")
	fmt.Fprintf(bw, "| %s=%s | %d | %d | %.4f%% |\n", attrName, label1,
		res.Rule1.CondCount, res.Rule1.SupCount, 100*res.Cf1)
	fmt.Fprintf(bw, "| %s=%s | %d | %d | %.4f%% |\n\n", attrName, label2,
		res.Rule2.CondCount, res.Rule2.SupCount, 100*res.Cf2)
	fmt.Fprintf(bw, "Expectation ratio cf2/cf1 = **%.3f**. ", res.Ratio)
	ciNote := "Confidence intervals at the configured level adjust every per-value confidence (Section IV.B of the paper)."
	if res.Options.DisableCI {
		ciNote = "Confidence-interval adjustment disabled: raw confidences feed the measure."
	}
	fmt.Fprintf(bw, "%s\n\n", ciNote)

	fmt.Fprintf(bw, "## Attribute ranking\n\n")
	fmt.Fprintf(bw, "| # | Attribute | M | normalized |\n|---:|---|---:|---:|\n")
	for i, s := range res.Ranked {
		fmt.Fprintf(bw, "| %d | %s | %.2f | %.4f |\n", i+1, s.Name, s.Score, s.NormScore)
	}
	fmt.Fprintln(bw)

	if len(res.Property) > 0 {
		fmt.Fprintf(bw, "## Property attributes (set aside, Section IV.C)\n\n")
		fmt.Fprintf(bw, "Values of these attributes occur in only one sub-population — data artifacts, not behaviour:\n\n")
		for _, p := range res.Property {
			fmt.Fprintf(bw, "- **%s** (exclusivity ratio %.2f)\n", p.Name, p.PropertyRatio)
		}
		fmt.Fprintln(bw)
	}

	fmt.Fprintf(bw, "## Evidence for the top %d attributes\n\n", min(opts.topN(), len(res.Ranked)))
	for i, s := range res.Ranked {
		if i >= opts.topN() {
			break
		}
		fmt.Fprintf(bw, "### %d. %s (M = %.2f)\n\n", i+1, s.Name, s.Score)
		fmt.Fprintf(bw, "| Value | %s n | %s rate | ± | %s n | %s rate | ± | F | W |\n",
			label1, label1, label2, label2)
		fmt.Fprintf(bw, "|---|---:|---:|---:|---:|---:|---:|---:|---:|\n")
		for _, d := range s.Values {
			if opts.MinW > 0 && d.W < opts.MinW {
				continue
			}
			fmt.Fprintf(bw, "| %s | %d | %.3f%% | %.3f%% | %d | %.3f%% | %.3f%% | %+.4f | %.1f |\n",
				escapeCell(d.Label), d.N1, 100*d.Cf1, 100*d.E1, d.N2, 100*d.Cf2, 100*d.E2, d.F, d.W)
		}
		fmt.Fprintln(bw)
		if hot := hottestValue(s); hot != "" {
			fmt.Fprintf(bw, "Focus: the gap concentrates in **%s**.\n\n", hot)
		}
	}

	if opts.Impressions != nil {
		writeImpressions(bw, opts.Impressions)
	}
	return bw.err
}

func writeImpressions(bw *errWriter, rep *gi.Report) {
	fmt.Fprintf(bw, "## Appendix: general impressions\n\n")
	if len(rep.Influential) > 0 {
		fmt.Fprintf(bw, "### Influential attributes\n\n")
		fmt.Fprintf(bw, "| Attribute | chi-square | p | MI (bits) |\n|---|---:|---:|---:|\n")
		for i, inf := range rep.Influential {
			if i >= 10 {
				break
			}
			fmt.Fprintf(bw, "| %s | %.1f | %.3g | %.5f |\n",
				inf.AttrName, inf.ChiSquare, inf.PValue, inf.MutualInformation)
		}
		fmt.Fprintln(bw)
	}
	if len(rep.Trends) > 0 {
		fmt.Fprintf(bw, "### Trends\n\n")
		trends := append([]gi.Trend(nil), rep.Trends...)
		sort.SliceStable(trends, func(i, j int) bool {
			if trends[i].AttrName != trends[j].AttrName {
				return trends[i].AttrName < trends[j].AttrName
			}
			return trends[i].ClassLabel < trends[j].ClassLabel
		})
		for _, tr := range trends {
			fmt.Fprintf(bw, "- %s: %s is **%s** (strength %.2f)\n",
				tr.ClassLabel, tr.AttrName, tr.Kind, tr.Strength)
		}
		fmt.Fprintln(bw)
	}
	if len(rep.Exceptions) > 0 {
		fmt.Fprintf(bw, "### Exceptions\n\n")
		for i, ex := range rep.Exceptions {
			if i >= 10 {
				break
			}
			fmt.Fprintf(bw, "- %s=%s → %s at %.2f%% (attribute mean %.2f%%, z=%.1f, n=%d)\n",
				ex.AttrName, ex.ValueLabel, ex.ClassLabel,
				100*ex.Confidence, 100*ex.Expected, ex.ZScore, ex.Support)
		}
		fmt.Fprintln(bw)
	}
}

// hottestValue names the value carrying the majority of an attribute's
// contribution, or "" when contributions are spread out.
func hottestValue(s compare.AttrScore) string {
	if s.Score <= 0 {
		return ""
	}
	var best compare.ValueDetail
	for _, d := range s.Values {
		if d.W > best.W {
			best = d
		}
	}
	if best.W > 0.5*s.Score {
		return best.Label
	}
	return ""
}

// escapeCell protects Markdown table syntax inside value labels.
func escapeCell(s string) string {
	return strings.ReplaceAll(s, "|", "\\|")
}

// errWriter folds write errors so formatting code stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
