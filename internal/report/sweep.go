package report

import (
	"fmt"
	"io"

	"opmap/internal/compare"
)

// Sweep renders a Markdown report of a sweep (screen every significant
// value pair, compare each, aggregate the explanations): the
// systemic-vs-specific summary an engineering manager acts on.
func Sweep(w io.Writer, attrName, classLabel string, res *compare.SweepResult, opts Options) error {
	bw := &errWriter{w: w}
	title := opts.Title
	if title == "" {
		title = fmt.Sprintf("Sweep report: %s pairs on %q", attrName, classLabel)
	}
	fmt.Fprintf(bw, "# %s\n\n", title)
	if !opts.Generated.IsZero() {
		fmt.Fprintf(bw, "_Generated %s_\n\n", opts.Generated.Format("2006-01-02T15:04:05Z07:00"))
	}
	fmt.Fprintf(bw, "%d significant pairs compared (%d skipped for undefined ratios).\n\n",
		res.PairsCompared, res.PairsSkipped)

	fmt.Fprintf(bw, "## Recurrent distinguishing attributes\n\n")
	fmt.Fprintf(bw, "An attribute distinguishing **many** pairs points at a systemic cause; "+
		"one distinguishing a **single** pair points at that product.\n\n")
	fmt.Fprintf(bw, "| Attribute | Pairs | Best M | Best pair | Total M |\n|---|---:|---:|---|---:|\n")
	for _, a := range res.Attributes {
		fmt.Fprintf(bw, "| %s | %d | %.1f | %s vs %s | %.1f |\n",
			a.Name, a.Pairs, a.BestScore, escapeCell(a.BestPair[0]), escapeCell(a.BestPair[1]), a.TotalScore)
	}
	fmt.Fprintln(bw)

	fmt.Fprintf(bw, "## Per-pair outcomes\n\n")
	fmt.Fprintf(bw, "| Pair | cf low | cf high | Top attribute | M |\n|---|---:|---:|---|---:|\n")
	for i, cmp := range res.Comparisons {
		labels := res.PairLabels[i]
		topName, topM := "—", 0.0
		if len(cmp.Ranked) > 0 {
			topName = cmp.Ranked[0].Name
			topM = cmp.Ranked[0].Score
		}
		fmt.Fprintf(bw, "| %s vs %s | %.3f%% | %.3f%% | %s | %.1f |\n",
			escapeCell(labels[0]), escapeCell(labels[1]), 100*cmp.Cf1, 100*cmp.Cf2, topName, topM)
	}
	fmt.Fprintln(bw)
	return bw.err
}
