package report

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"opmap/internal/compare"
	"opmap/internal/gi"
	"opmap/internal/rulecube"
	"opmap/internal/workload"
)

func fixture(t *testing.T) (*compare.Result, *gi.Report, workload.GroundTruth) {
	t.Helper()
	ds, gt, err := workload.CallLog(workload.CallLogConfig{Seed: 33, Records: 30000, NoiseAttrs: 2})
	if err != nil {
		t.Fatal(err)
	}
	store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	attr := ds.AttrIndex(gt.PhoneAttr)
	v1, _ := ds.Column(attr).Dict.Lookup(gt.GoodPhone)
	v2, _ := ds.Column(attr).Dict.Lookup(gt.BadPhone)
	cls, _ := ds.ClassDict().Lookup(gt.DropClass)
	res, err := compare.New(store).Compare(compare.Input{Attr: attr, V1: v1, V2: v2, Class: cls}, compare.Options{})
	if err != nil {
		t.Fatal(err)
	}
	imp, err := gi.MineAll(store, gi.TrendOptions{}, gi.ExceptionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res, imp, gt
}

func TestComparisonReportContent(t *testing.T) {
	res, imp, gt := fixture(t)
	var buf bytes.Buffer
	err := Comparison(&buf, res, gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass,
		Options{Impressions: imp})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Comparison report",
		"## Input rules",
		"## Attribute ranking",
		gt.DistinguishingAttr,
		"## Property attributes",
		gt.PropertyAttr,
		"## Evidence for the top",
		"morning",
		"## Appendix: general impressions",
		"Influential attributes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// The gap concentrates in the morning — the focus line must say so.
	if !strings.Contains(out, "concentrates in **morning**") {
		t.Error("missing focus line for the planted concentration")
	}
	// No timestamp by default (deterministic output).
	if strings.Contains(out, "_Generated") {
		t.Error("unexpected timestamp without Generated option")
	}
}

func TestComparisonReportDeterministic(t *testing.T) {
	res, imp, gt := fixture(t)
	render := func() string {
		var buf bytes.Buffer
		if err := Comparison(&buf, res, gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass,
			Options{Impressions: imp}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render() != render() {
		t.Error("report is not deterministic")
	}
}

func TestComparisonReportOptions(t *testing.T) {
	res, _, gt := fixture(t)
	var buf bytes.Buffer
	ts := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	err := Comparison(&buf, res, gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass,
		Options{Title: "Custom Title", TopN: 1, Generated: ts})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# Custom Title") {
		t.Error("custom title missing")
	}
	if !strings.Contains(out, "2026-07-05T12:00:00Z") {
		t.Error("timestamp missing")
	}
	if !strings.Contains(out, "top 1 attributes") {
		t.Error("TopN not reflected")
	}
	// Only one detailed section.
	if strings.Count(out, "### ") != 1 {
		t.Errorf("expected 1 detailed section, got %d", strings.Count(out, "### "))
	}
}

func TestEscapeCell(t *testing.T) {
	if escapeCell("a|b") != "a\\|b" {
		t.Error("pipe not escaped")
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n += len(p)
	if f.n > 100 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestComparisonReportPropagatesWriteError(t *testing.T) {
	res, _, gt := fixture(t)
	err := Comparison(&failWriter{}, res, gt.PhoneAttr, gt.GoodPhone, gt.BadPhone, gt.DropClass, Options{})
	if err == nil {
		t.Error("write error swallowed")
	}
}

func TestHottestValueSpread(t *testing.T) {
	// A score with evenly spread contributions has no focus value.
	s := compare.AttrScore{
		Score: 10,
		Values: []compare.ValueDetail{
			{Label: "a", W: 3},
			{Label: "b", W: 3},
			{Label: "c", W: 4},
		},
	}
	if hottestValue(s) != "" {
		t.Error("spread contributions should yield no focus")
	}
	s.Values[2].W = 8
	s.Score = 14
	if hottestValue(s) != "c" {
		t.Error("dominant value not detected")
	}
	if hottestValue(compare.AttrScore{}) != "" {
		t.Error("zero score should yield no focus")
	}
}

func TestSweepReport(t *testing.T) {
	ds, gt, err := workload.CallLog(workload.CallLogConfig{Seed: 44, Records: 40000, NoiseAttrs: 1})
	if err != nil {
		t.Fatal(err)
	}
	store, err := rulecube.BuildStore(ds, rulecube.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	phone := ds.AttrIndex(gt.PhoneAttr)
	cls, _ := ds.ClassDict().Lookup(gt.DropClass)
	sweep, err := compare.New(store).Sweep(phone, cls, compare.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Sweep(&buf, gt.PhoneAttr, gt.DropClass, sweep, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Sweep report",
		"Recurrent distinguishing attributes",
		gt.DistinguishingAttr,
		"Per-pair outcomes",
		gt.BadPhone,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep report missing %q", want)
		}
	}
	// Write errors propagate.
	if err := Sweep(&failWriter{}, gt.PhoneAttr, gt.DropClass, sweep, Options{}); err == nil {
		t.Error("write error swallowed")
	}
}
