package workload

import (
	"fmt"

	"math/rand"

	"opmap/internal/dataset"
	"opmap/internal/stats"
)

// DrillLogConfig parameterizes the drill-down case workload: a call
// log whose dominant planted effect needs *two* conditions to express.
type DrillLogConfig struct {
	Seed    int64
	Records int

	// NumPhones is the number of phone models (≥ 2; default 3).
	// Phone 0 is the good phone, phone 1 the bad phone.
	NumPhones int

	// GoodDropRate and BadDropRate are the base drop rates of the good
	// and bad phone (defaults 0.05 and 0.06). The gap between them is
	// deliberately small: the interesting structure is conditional.
	GoodDropRate float64
	BadDropRate  float64

	// SurfaceBoost is added to the bad phone's drop rate in one
	// Time-of-Call value (default 0.10). This is the decoy: a genuine
	// one-condition effect that the root comparison surfaces as its
	// top attribute, so the joint effect cannot be found by reading
	// the 1-D ranking alone.
	SurfaceBoost float64

	// JointRate is the bad phone's drop rate inside the single
	// (Terrain, Signal-Band) cell carrying the planted two-condition
	// effect (default 0.90). Spread over JointCardinality² cells, its
	// trace in either attribute's marginal is a fraction of the decoy.
	JointRate float64

	// JointCardinality is the domain size of Terrain and Signal-Band
	// (default 12). Larger cardinality dilutes the joint cell's
	// marginal footprint further.
	JointCardinality int

	// SetupFailRate is the class-independent setup-failure rate
	// (default 0.01).
	SetupFailRate float64

	// NoiseAttrs is the number of class-independent attributes
	// (default 3); NoiseCardinality their domain size (default 6).
	NoiseAttrs       int
	NoiseCardinality int
}

func (c DrillLogConfig) withDefaults() DrillLogConfig {
	if c.Records == 0 {
		c.Records = 60000
	}
	if c.NumPhones < 2 {
		c.NumPhones = 3
	}
	if stats.IsZero(c.GoodDropRate) {
		c.GoodDropRate = 0.05
	}
	if stats.IsZero(c.BadDropRate) {
		c.BadDropRate = 0.06
	}
	if stats.IsZero(c.SurfaceBoost) {
		c.SurfaceBoost = 0.10
	}
	if stats.IsZero(c.JointRate) {
		c.JointRate = 0.90
	}
	if c.JointCardinality == 0 {
		c.JointCardinality = 12
	}
	if stats.IsZero(c.SetupFailRate) {
		c.SetupFailRate = 0.01
	}
	if c.NoiseAttrs == 0 {
		c.NoiseAttrs = 3
	}
	if c.NoiseCardinality == 0 {
		c.NoiseCardinality = 6
	}
	return c
}

// DrillTruth records the planted structure of a drill-down workload.
type DrillTruth struct {
	PhoneAttr string
	GoodPhone string
	BadPhone  string
	DropClass string

	// SurfaceAttr/SurfaceValue is the one-condition decoy effect: the
	// attribute a plain comparison ranks first.
	SurfaceAttr  string
	SurfaceValue string

	// JointAttrA=JointValueA ∧ JointAttrB=JointValueB is the planted
	// two-condition effect. Neither attribute alone outranks the decoy
	// in the 1-D ranking; the conjunction should rank first in a
	// drill-down.
	JointAttrA  string
	JointValueA string
	JointAttrB  string
	JointValueB string

	NoiseAttrs []string
}

// timePeriods is the Time-of-Call domain of the drill workload.
var timePeriods = []string{"night", "morning", "midday", "afternoon", "evening", "late-night"}

// DrillLog generates a synthetic call log with a planted two-condition
// effect. Drop-probability model for the bad phone:
//
//	p = JointRate                              if Terrain=A ∧ Signal-Band=B
//	p = BadDropRate + SurfaceBoost·[morning]   otherwise
//
// The good phone drops at GoodDropRate everywhere; remaining phones sit
// between the two. The joint cell covers 1/JointCardinality² of the bad
// phone's records, so each of its two marginals carries only ~1/12 of
// the excess — enough to enter a drill-down beam, not enough to outrank
// the morning decoy in the one-condition comparison.
func DrillLog(cfg DrillLogConfig) (*dataset.Dataset, DrillTruth, error) {
	cfg = cfg.withDefaults()
	if cfg.GoodDropRate <= 0 || cfg.BadDropRate < cfg.GoodDropRate {
		return nil, DrillTruth{}, fmt.Errorf("workload: need 0 < GoodDropRate ≤ BadDropRate, got %v and %v", cfg.GoodDropRate, cfg.BadDropRate)
	}
	if cfg.JointRate <= cfg.BadDropRate || cfg.JointRate > 1 {
		return nil, DrillTruth{}, fmt.Errorf("workload: JointRate %v must be in (BadDropRate, 1]", cfg.JointRate)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	phoneDict := dataset.NewDictionary()
	for i := 0; i < cfg.NumPhones; i++ {
		phoneDict.Code(fmt.Sprintf("ph%d", i+1))
	}
	timeDict := dataset.DictionaryOf(timePeriods...)
	terrainDict := dataset.NewDictionary()
	bandDict := dataset.NewDictionary()
	for i := 0; i < cfg.JointCardinality; i++ {
		terrainDict.Code(fmt.Sprintf("terrain-%02d", i+1))
		bandDict.Code(fmt.Sprintf("band-%02d", i+1))
	}
	classDict := dataset.DictionaryOf(ClassOK, ClassDropped, ClassSetupFailed)

	// Planted coordinates, away from the dictionaries' first codes so
	// position bugs cannot masquerade as recovery.
	const (
		morningIdx = 1 // "morning"
		terrainIdx = 6 // "terrain-07"
		bandIdx    = 3 // "band-04"
	)

	attrs := []dataset.Attribute{
		{Name: "Phone-Model", Kind: dataset.Categorical},
		{Name: "Time-of-Call", Kind: dataset.Categorical},
		{Name: "Terrain", Kind: dataset.Categorical},
		{Name: "Signal-Band", Kind: dataset.Categorical},
	}
	gt := DrillTruth{
		PhoneAttr:    "Phone-Model",
		GoodPhone:    "ph1",
		BadPhone:     "ph2",
		DropClass:    ClassDropped,
		SurfaceAttr:  "Time-of-Call",
		SurfaceValue: timePeriods[morningIdx],
		JointAttrA:   "Terrain",
		JointValueA:  fmt.Sprintf("terrain-%02d", terrainIdx+1),
		JointAttrB:   "Signal-Band",
		JointValueB:  fmt.Sprintf("band-%02d", bandIdx+1),
	}
	for i := 0; i < cfg.NoiseAttrs; i++ {
		name := fmt.Sprintf("Param-%02d", i+1)
		attrs = append(attrs, dataset.Attribute{Name: name, Kind: dataset.Categorical})
		gt.NoiseAttrs = append(gt.NoiseAttrs, name)
	}
	attrs = append(attrs, dataset.Attribute{Name: "Disposition", Kind: dataset.Categorical})
	classIdx := len(attrs) - 1

	b, err := dataset.NewBuilder(dataset.Schema{Attrs: attrs, ClassIndex: classIdx})
	if err != nil {
		return nil, DrillTruth{}, err
	}
	b.WithDict(0, phoneDict)
	b.WithDict(1, timeDict)
	b.WithDict(2, terrainDict)
	b.WithDict(3, bandDict)
	for i := 0; i < cfg.NoiseAttrs; i++ {
		d := dataset.NewDictionary()
		for v := 0; v < cfg.NoiseCardinality; v++ {
			d.Code(fmt.Sprintf("v%d", v+1))
		}
		b.WithDict(4+i, d)
	}
	b.WithDict(classIdx, classDict)

	midRate := (cfg.GoodDropRate + cfg.BadDropRate) / 2
	codes := make([]int32, len(attrs))
	for r := 0; r < cfg.Records; r++ {
		phone := rng.Intn(cfg.NumPhones)
		timeVal := rng.Intn(len(timePeriods))
		terrain := rng.Intn(cfg.JointCardinality)
		band := rng.Intn(cfg.JointCardinality)

		var p float64
		switch {
		case phone == 0:
			p = cfg.GoodDropRate
		case phone == 1 && terrain == terrainIdx && band == bandIdx:
			p = cfg.JointRate
		case phone == 1:
			p = cfg.BadDropRate
			if timeVal == morningIdx {
				p += cfg.SurfaceBoost
			}
		default:
			p = midRate
		}
		if p > 0.95 {
			p = 0.95
		}

		var class int32
		u := rng.Float64()
		switch {
		case u < p:
			class = 1 // dropped
		case u < p+cfg.SetupFailRate:
			class = 2 // setup failed
		default:
			class = 0 // ok
		}

		codes[0] = int32(phone)
		codes[1] = int32(timeVal)
		codes[2] = int32(terrain)
		codes[3] = int32(band)
		for i := 0; i < cfg.NoiseAttrs; i++ {
			codes[4+i] = int32(rng.Intn(cfg.NoiseCardinality))
		}
		codes[classIdx] = class
		if err := b.AddCodedRow(codes, nil); err != nil {
			return nil, DrillTruth{}, err
		}
	}
	ds, err := b.Build()
	if err != nil {
		return nil, DrillTruth{}, err
	}
	return ds, gt, nil
}
