package workload

import (
	"fmt"
	"math/rand"

	"opmap/internal/dataset"
)

// Manufacturing generates a defect-diagnosis dataset for a second
// domain-specific example, showing the comparison capability is "useful
// in any engineering or manufacturing domain" (Section III.C). It
// includes two continuous attributes so the example also exercises the
// discretizer.

// ManufacturingConfig parameterizes the synthetic production log.
type ManufacturingConfig struct {
	Seed    int64
	Records int
}

// ManufacturingTruth records the planted structure.
type ManufacturingTruth struct {
	MachineAttr string
	GoodMachine string // lower defect rate
	BadMachine  string // higher defect rate
	DefectClass string
	// DistinguishingAttr explains the gap: the bad machine's excess
	// defects come from one supplier's material batches.
	DistinguishingAttr string
	BadSupplier        string
	// PropertyAttr is the tool revision, unique per machine.
	PropertyAttr string
	// ContinuousAttrs must be discretized before mining.
	ContinuousAttrs []string
}

// Manufacturing generates the production log.
//
// Defect model: base 3% per unit; machine "M7" runs at the same base but
// units built from supplier "S4" material on M7 are defective 18% of the
// time, lifting M7's marginal rate to ≈ 6%. Humidity above 70 adds a
// mild global effect (a plantable trend), temperature is pure noise.
func Manufacturing(cfg ManufacturingConfig) (*dataset.Dataset, ManufacturingTruth, error) {
	if cfg.Records == 0 {
		cfg.Records = 40000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	const numMachines = 8
	const numSuppliers = 5
	const numShifts = 3
	const numOperators = 12

	machineDict := dataset.NewDictionary()
	toolDict := dataset.NewDictionary()
	for i := 1; i <= numMachines; i++ {
		machineDict.Code(fmt.Sprintf("M%d", i))
		toolDict.Code(fmt.Sprintf("tool-rev-%d", i))
	}
	supplierDict := dataset.NewDictionary()
	for i := 1; i <= numSuppliers; i++ {
		supplierDict.Code(fmt.Sprintf("S%d", i))
	}
	shiftDict := dataset.DictionaryOf("day", "swing", "night")
	operatorDict := dataset.NewDictionary()
	for i := 1; i <= numOperators; i++ {
		operatorDict.Code(fmt.Sprintf("op%02d", i))
	}
	classDict := dataset.DictionaryOf("good", "defective")

	attrs := []dataset.Attribute{
		{Name: "Machine", Kind: dataset.Categorical},
		{Name: "Supplier", Kind: dataset.Categorical},
		{Name: "Shift", Kind: dataset.Categorical},
		{Name: "Operator", Kind: dataset.Categorical},
		{Name: "Tool-Revision", Kind: dataset.Categorical},
		{Name: "Humidity", Kind: dataset.Continuous},
		{Name: "Temperature", Kind: dataset.Continuous},
		{Name: "Quality", Kind: dataset.Categorical},
	}
	classIdx := len(attrs) - 1
	b, err := dataset.NewBuilder(dataset.Schema{Attrs: attrs, ClassIndex: classIdx})
	if err != nil {
		return nil, ManufacturingTruth{}, err
	}
	b.WithDict(0, machineDict)
	b.WithDict(1, supplierDict)
	b.WithDict(2, shiftDict)
	b.WithDict(3, operatorDict)
	b.WithDict(4, toolDict)
	b.WithDict(classIdx, classDict)

	truth := ManufacturingTruth{
		MachineAttr:        "Machine",
		GoodMachine:        "M2",
		BadMachine:         "M7",
		DefectClass:        "defective",
		DistinguishingAttr: "Supplier",
		BadSupplier:        "S4",
		PropertyAttr:       "Tool-Revision",
		ContinuousAttrs:    []string{"Humidity", "Temperature"},
	}

	codes := make([]int32, len(attrs))
	values := make([]float64, len(attrs))
	for r := 0; r < cfg.Records; r++ {
		machine := rng.Intn(numMachines)
		supplier := rng.Intn(numSuppliers)
		shift := rng.Intn(numShifts)
		operator := rng.Intn(numOperators)
		humidity := 30 + rng.Float64()*60    // 30–90 %RH
		temperature := 15 + rng.Float64()*20 // 15–35 °C

		p := 0.03
		if machine == 6 && supplier == 3 { // M7 with S4 material
			p = 0.18
		}
		if humidity > 70 {
			p *= 1.5
		}
		if p > 0.95 {
			p = 0.95
		}

		codes[0] = int32(machine)
		codes[1] = int32(supplier)
		codes[2] = int32(shift)
		codes[3] = int32(operator)
		codes[4] = int32(machine) // tool revision tied to machine
		values[5] = humidity
		values[6] = temperature
		if rng.Float64() < p {
			codes[classIdx] = 1
		} else {
			codes[classIdx] = 0
		}
		if err := b.AddCodedRow(codes, values); err != nil {
			return nil, ManufacturingTruth{}, err
		}
	}
	ds, err := b.Build()
	if err != nil {
		return nil, ManufacturingTruth{}, err
	}
	return ds, truth, nil
}
