package workload

import (
	"fmt"
	"math/rand"

	"opmap/internal/dataset"
)

// ScaleConfig parameterizes the scale-up workloads behind the paper's
// performance figures (Fig. 9–11): a dataset with a controllable number
// of attributes, per-attribute cardinality, and records. Attribute 0 is
// a product-like attribute whose first two values differ in failure
// rate, with the gap planted in attribute 1, so comparisons over the
// scale-up data remain meaningful, not just busywork.
type ScaleConfig struct {
	Seed        int64
	Records     int
	Attrs       int // number of non-class attributes (the paper sweeps 40–160)
	Cardinality int // values per attribute; zero means 8
	Classes     int // number of classes; zero means 3
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if c.Records == 0 {
		c.Records = 100000
	}
	if c.Attrs == 0 {
		c.Attrs = 40
	}
	if c.Cardinality == 0 {
		c.Cardinality = 8
	}
	if c.Classes == 0 {
		c.Classes = 3
	}
	return c
}

// Scale generates the scale-up dataset. Class 1 is the rare "failure"
// class: value 1 of attribute 0 fails at 4% vs 2% for value 0, with the
// excess concentrated in value 0 of attribute 1.
func Scale(cfg ScaleConfig) (*dataset.Dataset, error) {
	cfg = cfg.withDefaults()
	if cfg.Attrs < 2 {
		return nil, fmt.Errorf("workload: scale config needs at least 2 attributes, got %d", cfg.Attrs)
	}
	if cfg.Cardinality < 2 {
		return nil, fmt.Errorf("workload: scale config needs cardinality at least 2, got %d", cfg.Cardinality)
	}
	if cfg.Classes < 2 {
		return nil, fmt.Errorf("workload: scale config needs at least 2 classes, got %d", cfg.Classes)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	attrs := make([]dataset.Attribute, cfg.Attrs+1)
	for i := 0; i < cfg.Attrs; i++ {
		attrs[i] = dataset.Attribute{Name: fmt.Sprintf("A%03d", i), Kind: dataset.Categorical}
	}
	classIdx := cfg.Attrs
	attrs[classIdx] = dataset.Attribute{Name: "class", Kind: dataset.Categorical}

	b, err := dataset.NewBuilder(dataset.Schema{Attrs: attrs, ClassIndex: classIdx})
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Attrs; i++ {
		d := dataset.NewDictionary()
		for v := 0; v < cfg.Cardinality; v++ {
			d.Code(fmt.Sprintf("v%d", v))
		}
		b.WithDict(i, d)
	}
	classDict := dataset.NewDictionary()
	classDict.Code("ok")
	classDict.Code("fail")
	for k := 2; k < cfg.Classes; k++ {
		classDict.Code(fmt.Sprintf("c%d", k))
	}
	b.WithDict(classIdx, classDict)

	codes := make([]int32, cfg.Attrs+1)
	for r := 0; r < cfg.Records; r++ {
		for i := 0; i < cfg.Attrs; i++ {
			codes[i] = int32(rng.Intn(cfg.Cardinality))
		}
		// Planted failure structure on attributes 0 and 1.
		p := 0.02
		if codes[0] == 1 {
			if codes[1] == 0 {
				p = 0.02 * float64(2*cfg.Cardinality-1) // excess concentrated here
			} else {
				p = 0.02
			}
		}
		if p > 0.9 {
			p = 0.9
		}
		u := rng.Float64()
		switch {
		case u < p:
			codes[classIdx] = 1
		case cfg.Classes > 2 && u < p+0.01:
			codes[classIdx] = 2
		default:
			codes[classIdx] = 0
		}
		if err := b.AddCodedRow(codes, nil); err != nil {
			return nil, err
		}
	}
	return b.Build()
}
