package workload

import (
	"math"
	"testing"

	"opmap/internal/dataset"
)

func TestCallLogShape(t *testing.T) {
	ds, gt, err := CallLog(CallLogConfig{Seed: 1, Records: 20000, NumPhones: 4, NoiseAttrs: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRows() != 20000 {
		t.Fatalf("rows = %d", ds.NumRows())
	}
	// 5 planted + 5 noise + class = 11 attributes.
	if ds.NumAttrs() != 11 {
		t.Fatalf("attrs = %d, want 11", ds.NumAttrs())
	}
	if !ds.AllCategorical() {
		t.Error("call log must be fully categorical")
	}
	for _, name := range []string{gt.PhoneAttr, gt.DistinguishingAttr, gt.SecondaryAttr, gt.ProportionalAttr, gt.PropertyAttr} {
		if ds.AttrIndex(name) < 0 {
			t.Errorf("ground truth attribute %q missing", name)
		}
	}
	if len(gt.NoiseAttrs) != 5 {
		t.Errorf("noise attrs = %d", len(gt.NoiseAttrs))
	}
}

func TestCallLogPlantedRates(t *testing.T) {
	ds, gt, err := CallLog(CallLogConfig{Seed: 7, Records: 200000})
	if err != nil {
		t.Fatal(err)
	}
	phone := ds.AttrIndex(gt.PhoneAttr)
	dropCode, _ := ds.ClassDict().Lookup(gt.DropClass)
	good, _ := ds.Column(phone).Dict.Lookup(gt.GoodPhone)
	bad, _ := ds.Column(phone).Dict.Lookup(gt.BadPhone)

	rate := func(v int32) float64 {
		var n, d int64
		for r := 0; r < ds.NumRows(); r++ {
			if ds.CatCode(r, phone) != v {
				continue
			}
			n++
			if ds.ClassCode(r) == dropCode {
				d++
			}
		}
		return float64(d) / float64(n)
	}
	gr, br := rate(good), rate(bad)
	if math.Abs(gr-0.02) > 0.005 {
		t.Errorf("good phone drop rate %.4f, want ≈0.02", gr)
	}
	if math.Abs(br-0.04) > 0.008 {
		t.Errorf("bad phone drop rate %.4f, want ≈0.04", br)
	}

	// The bad phone's excess lives in the morning (Fig. 2(B)).
	timeA := ds.AttrIndex(gt.DistinguishingAttr)
	morning, _ := ds.Column(timeA).Dict.Lookup(gt.MorningValue)
	evening, _ := ds.Column(timeA).Dict.Lookup("evening")
	condRate := func(pv, tv int32) float64 {
		var n, d int64
		for r := 0; r < ds.NumRows(); r++ {
			if ds.CatCode(r, phone) != pv || ds.CatCode(r, timeA) != tv {
				continue
			}
			n++
			if ds.ClassCode(r) == dropCode {
				d++
			}
		}
		if n == 0 {
			return 0
		}
		return float64(d) / float64(n)
	}
	badMorning := condRate(bad, morning)
	badEvening := condRate(bad, evening)
	goodEvening := condRate(good, evening)
	if badMorning < 2.5*badEvening {
		t.Errorf("bad phone morning rate %.4f not concentrated vs evening %.4f", badMorning, badEvening)
	}
	if math.Abs(badEvening-goodEvening) > 0.01 {
		t.Errorf("evening rates should match: bad=%.4f good=%.4f", badEvening, goodEvening)
	}
}

func TestCallLogPropertyAttribute(t *testing.T) {
	ds, gt, err := CallLog(CallLogConfig{Seed: 3, Records: 5000})
	if err != nil {
		t.Fatal(err)
	}
	phone := ds.AttrIndex(gt.PhoneAttr)
	hw := ds.AttrIndex(gt.PropertyAttr)
	for r := 0; r < ds.NumRows(); r++ {
		if ds.CatCode(r, phone) != ds.CatCode(r, hw) {
			t.Fatal("hardware version must be determined by phone model")
		}
	}
}

func TestCallLogDeterministic(t *testing.T) {
	a, _, err := CallLog(CallLogConfig{Seed: 5, Records: 1000})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := CallLog(CallLogConfig{Seed: 5, Records: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < a.NumRows(); r++ {
		for c := 0; c < a.NumAttrs(); c++ {
			if a.Label(r, c) != b.Label(r, c) {
				t.Fatalf("generation not deterministic at (%d,%d)", r, c)
			}
		}
	}
	c, _, err := CallLog(CallLogConfig{Seed: 6, Records: 1000})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for r := 0; r < a.NumRows() && same; r++ {
		if a.ClassCode(r) != c.ClassCode(r) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical class sequences")
	}
}

func TestCallLogValidation(t *testing.T) {
	if _, _, err := CallLog(CallLogConfig{Seed: 1, Records: 100, GoodDropRate: 0.05, BadDropRate: 0.02}); err == nil {
		t.Error("good > bad rate should fail")
	}
	if _, _, err := CallLog(CallLogConfig{Seed: 1, Records: 100, GoodDropRate: -1, BadDropRate: 0.02}); err == nil {
		t.Error("negative rate should fail")
	}
}

func TestCaseStudyConfigShape(t *testing.T) {
	ds, _, err := CallLog(CaseStudyConfig(1, 5000))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's case study: 41 attributes, one of which is the class.
	if ds.NumAttrs() != 41 {
		t.Errorf("case study attrs = %d, want 41", ds.NumAttrs())
	}
}

func TestClassSkew(t *testing.T) {
	ds, gt, err := CallLog(CallLogConfig{Seed: 2, Records: 50000})
	if err != nil {
		t.Fatal(err)
	}
	okCode, _ := ds.ClassDict().Lookup(gt.OKClass)
	dist := ds.ClassDistribution()
	frac := float64(dist[okCode]) / float64(ds.NumRows())
	if frac < 0.9 {
		t.Errorf("majority class share %.3f; call logs must be highly skewed", frac)
	}
}

func TestScaleShape(t *testing.T) {
	ds, err := Scale(ScaleConfig{Seed: 1, Records: 5000, Attrs: 40, Cardinality: 8, Classes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumAttrs() != 41 {
		t.Errorf("attrs = %d, want 41", ds.NumAttrs())
	}
	if ds.NumRows() != 5000 {
		t.Errorf("rows = %d", ds.NumRows())
	}
	for a := 0; a < 40; a++ {
		if ds.Cardinality(a) != 8 {
			t.Fatalf("attr %d cardinality = %d", a, ds.Cardinality(a))
		}
	}
	if ds.NumClasses() != 3 {
		t.Errorf("classes = %d", ds.NumClasses())
	}
}

func TestScalePlantedSignal(t *testing.T) {
	ds, err := Scale(ScaleConfig{Seed: 9, Records: 100000, Attrs: 10, Cardinality: 4, Classes: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A0=v1 & A1=v0 must fail far more often than baseline.
	var hotN, hotF, coldN, coldF int64
	for r := 0; r < ds.NumRows(); r++ {
		fail := ds.ClassCode(r) == 1
		if ds.CatCode(r, 0) == 1 && ds.CatCode(r, 1) == 0 {
			hotN++
			if fail {
				hotF++
			}
		} else if ds.CatCode(r, 0) == 0 {
			coldN++
			if fail {
				coldF++
			}
		}
	}
	hot := float64(hotF) / float64(hotN)
	cold := float64(coldF) / float64(coldN)
	if hot < 3*cold {
		t.Errorf("planted hot cell rate %.4f vs baseline %.4f: signal too weak", hot, cold)
	}
}

func TestScaleValidation(t *testing.T) {
	if _, err := Scale(ScaleConfig{Attrs: 1, Records: 10}); err == nil {
		t.Error("1 attribute should fail")
	}
	if _, err := Scale(ScaleConfig{Attrs: 4, Cardinality: 1, Records: 10}); err == nil {
		t.Error("cardinality 1 should fail")
	}
	if _, err := Scale(ScaleConfig{Attrs: 4, Classes: 1, Records: 10}); err == nil {
		t.Error("single class should fail")
	}
}

func TestManufacturingShape(t *testing.T) {
	ds, truth, err := Manufacturing(ManufacturingConfig{Seed: 1, Records: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if ds.AllCategorical() {
		t.Error("manufacturing log must contain continuous attributes")
	}
	for _, n := range truth.ContinuousAttrs {
		i := ds.AttrIndex(n)
		if i < 0 || ds.Attr(i).Kind != dataset.Continuous {
			t.Errorf("attribute %q should be continuous", n)
		}
	}
	// Planted M7×S4 defect concentration.
	m := ds.AttrIndex(truth.MachineAttr)
	s := ds.AttrIndex(truth.DistinguishingAttr)
	bad, _ := ds.Column(m).Dict.Lookup(truth.BadMachine)
	sup, _ := ds.Column(s).Dict.Lookup(truth.BadSupplier)
	defCode, _ := ds.ClassDict().Lookup(truth.DefectClass)
	var hotN, hotD, otherN, otherD int64
	for r := 0; r < ds.NumRows(); r++ {
		isDef := ds.ClassCode(r) == defCode
		if ds.CatCode(r, m) == bad && ds.CatCode(r, s) == sup {
			hotN++
			if isDef {
				hotD++
			}
		} else {
			otherN++
			if isDef {
				otherD++
			}
		}
	}
	hot := float64(hotD) / float64(hotN)
	other := float64(otherD) / float64(otherN)
	if hot < 3*other {
		t.Errorf("planted defect rate %.4f vs %.4f too weak", hot, other)
	}
}

func TestCallLogMissingRate(t *testing.T) {
	ds, gt, err := CallLog(CallLogConfig{Seed: 9, Records: 10000, NoiseAttrs: 4, MissingRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	var missing, total int64
	for _, name := range gt.NoiseAttrs {
		a := ds.AttrIndex(name)
		for r := 0; r < ds.NumRows(); r++ {
			total++
			if ds.CatCode(r, a) == dataset.Missing {
				missing++
			}
		}
	}
	frac := float64(missing) / float64(total)
	if frac < 0.08 || frac > 0.12 {
		t.Errorf("missing fraction %.3f, want ≈0.10", frac)
	}
	// Planted attributes stay complete.
	a := ds.AttrIndex(gt.DistinguishingAttr)
	for r := 0; r < ds.NumRows(); r++ {
		if ds.CatCode(r, a) == dataset.Missing {
			t.Fatal("planted attribute should not be gappy")
		}
	}
}
