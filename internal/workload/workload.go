// Package workload generates synthetic diagnostic-mining datasets with
// planted, verifiable structure. The paper's Motorola call logs are
// confidential; these generators plant the same conditional-probability
// patterns the paper describes — a "bad" product value whose extra
// failures concentrate in specific values of a distinguishing attribute
// (Fig. 2(B)), proportional attributes that change nothing (Fig. 2(A)),
// and property attributes (Section IV.C) — so the comparator's output
// can be checked against known ground truth.
package workload

import (
	"fmt"
	"math/rand"

	"opmap/internal/dataset"
	"opmap/internal/stats"
)

// Classes used by the call-log generator, mirroring the paper's
// "ended successfully", "dropped while in progress", "failed during
// setup" dispositions.
const (
	ClassOK          = "ended-successfully"
	ClassDropped     = "dropped-in-progress"
	ClassSetupFailed = "failed-during-setup"
)

// CallLogConfig parameterizes the synthetic cellular call log.
type CallLogConfig struct {
	Seed    int64
	Records int

	// NumPhones is the number of phone models (≥ 2). Phone 0 is the
	// "good" phone, phone 1 the "bad" phone of the case study.
	NumPhones int

	// GoodDropRate is the base drop rate of phone 0 (paper example: 2%).
	GoodDropRate float64
	// BadDropRate is the overall drop rate of phone 1 (paper example:
	// 4%); its excess over GoodDropRate is concentrated in the morning
	// values of Time-of-Call, reproducing Fig. 2(B).
	BadDropRate float64

	// SetupFailRate is the class-independent setup-failure rate.
	SetupFailRate float64

	// NoiseAttrs is the number of attributes unrelated to the class.
	NoiseAttrs int
	// NoiseCardinality is the domain size of each noise attribute.
	// Zero means 6.
	NoiseCardinality int
	// MissingRate makes each noise-attribute cell missing with this
	// probability (real logs are gappy; the pipeline must survive
	// missing values end to end).
	MissingRate float64
}

func (c CallLogConfig) withDefaults() CallLogConfig {
	if c.Records == 0 {
		c.Records = 50000
	}
	if c.NumPhones < 2 {
		c.NumPhones = 6
	}
	if stats.IsZero(c.GoodDropRate) {
		c.GoodDropRate = 0.02
	}
	if stats.IsZero(c.BadDropRate) {
		c.BadDropRate = 0.04
	}
	if stats.IsZero(c.SetupFailRate) {
		c.SetupFailRate = 0.01
	}
	if c.NoiseCardinality == 0 {
		c.NoiseCardinality = 6
	}
	return c
}

// GroundTruth records what was planted, so tests and examples can verify
// the comparator recovers it.
type GroundTruth struct {
	PhoneAttr string // comparison attribute (Phone-Model)
	GoodPhone string // value with the lower drop rate
	BadPhone  string // value with the higher drop rate
	DropClass string // class of interest
	OKClass   string

	// DistinguishingAttr is the planted attribute that explains the
	// drop-rate gap (Time-of-Call; the gap lives in MorningValue).
	DistinguishingAttr string
	MorningValue       string

	// SecondaryAttr carries a weaker planted effect; it should rank
	// above noise but below the distinguishing attribute.
	SecondaryAttr string

	// ProportionalAttr modulates drop rates of both phones identically
	// (Fig. 2(A)): interesting-looking but M should be ≈ 0 relative to
	// the distinguishing attribute.
	ProportionalAttr string

	// PropertyAttr takes values determined by the phone model
	// (Phone-Hardware-Version, Section IV.C): the comparator must set it
	// aside as a property attribute.
	PropertyAttr string

	NoiseAttrs []string
}

// timeOfCall domain, in natural order so trends are visible.
var timeValues = []string{"morning", "afternoon", "evening"}

// CallLog generates the synthetic call log. The returned dataset is
// fully categorical and ready for cube construction.
//
// Drop-probability model per record:
//
//	p = base(phone) · propMult(prop value) · timeMult(phone, time) · secMult(phone, sec value)
//
// where base(phone 0) = GoodDropRate and the bad phone's time
// multipliers are calibrated so its marginal drop rate ≈ BadDropRate
// with the entire excess in the morning (Fig. 2(B)). Other phones get
// intermediate uniform rates.
func CallLog(cfg CallLogConfig) (*dataset.Dataset, GroundTruth, error) {
	cfg = cfg.withDefaults()
	if cfg.GoodDropRate <= 0 || cfg.BadDropRate <= cfg.GoodDropRate {
		return nil, GroundTruth{}, fmt.Errorf("workload: need 0 < GoodDropRate < BadDropRate, got %v and %v", cfg.GoodDropRate, cfg.BadDropRate)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	phoneDict := dataset.NewDictionary()
	for i := 0; i < cfg.NumPhones; i++ {
		phoneDict.Code(fmt.Sprintf("ph%d", i+1))
	}
	timeDict := dataset.DictionaryOf(timeValues...)
	propDict := dataset.DictionaryOf("band-low", "band-mid", "band-high")
	secDict := dataset.DictionaryOf("urban", "suburban", "rural", "highway")
	hwDict := dataset.NewDictionary()
	for i := 0; i < cfg.NumPhones; i++ {
		hwDict.Code(fmt.Sprintf("hw-rev-%d", i+1))
	}
	classDict := dataset.DictionaryOf(ClassOK, ClassDropped, ClassSetupFailed)

	attrs := []dataset.Attribute{
		{Name: "Phone-Model", Kind: dataset.Categorical},
		{Name: "Time-of-Call", Kind: dataset.Categorical},
		{Name: "Signal-Band", Kind: dataset.Categorical},
		{Name: "Terrain", Kind: dataset.Categorical},
		{Name: "Phone-Hardware-Version", Kind: dataset.Categorical},
	}
	gt := GroundTruth{
		PhoneAttr:          "Phone-Model",
		GoodPhone:          "ph1",
		BadPhone:           "ph2",
		DropClass:          ClassDropped,
		OKClass:            ClassOK,
		DistinguishingAttr: "Time-of-Call",
		MorningValue:       "morning",
		SecondaryAttr:      "Terrain",
		ProportionalAttr:   "Signal-Band",
		PropertyAttr:       "Phone-Hardware-Version",
	}
	for i := 0; i < cfg.NoiseAttrs; i++ {
		name := fmt.Sprintf("Param-%02d", i+1)
		attrs = append(attrs, dataset.Attribute{Name: name, Kind: dataset.Categorical})
		gt.NoiseAttrs = append(gt.NoiseAttrs, name)
	}
	attrs = append(attrs, dataset.Attribute{Name: "Disposition", Kind: dataset.Categorical})
	classIdx := len(attrs) - 1

	b, err := dataset.NewBuilder(dataset.Schema{Attrs: attrs, ClassIndex: classIdx})
	if err != nil {
		return nil, GroundTruth{}, err
	}
	b.WithDict(0, phoneDict)
	b.WithDict(1, timeDict)
	b.WithDict(2, propDict)
	b.WithDict(3, secDict)
	b.WithDict(4, hwDict)
	noiseDicts := make([]*dataset.Dictionary, cfg.NoiseAttrs)
	for i := 0; i < cfg.NoiseAttrs; i++ {
		d := dataset.NewDictionary()
		for v := 0; v < cfg.NoiseCardinality; v++ {
			d.Code(fmt.Sprintf("v%d", v+1))
		}
		noiseDicts[i] = d
		b.WithDict(5+i, d)
	}
	b.WithDict(classIdx, classDict)

	// Per-phone base drop rates: phone 0 good, phone 1 bad, the rest in
	// between (so the case study has realistic "other" products).
	base := make([]float64, cfg.NumPhones)
	base[0] = cfg.GoodDropRate
	base[1] = cfg.BadDropRate
	for i := 2; i < cfg.NumPhones; i++ {
		frac := float64(i-1) / float64(cfg.NumPhones)
		base[i] = cfg.GoodDropRate + frac*(cfg.BadDropRate-cfg.GoodDropRate)
	}

	// Time multipliers: the bad phone's entire excess is in the morning.
	// With uniform time-of-call, marginal rate = base·mean(mult). For the
	// bad phone we want mean = BadDropRate/GoodDropRate with afternoon
	// and evening at the good phone's level (mult 1 on GoodDropRate):
	// morning mult m solves Good·(m+1+1)/3 = Bad ⇒ m = 3·Bad/Good − 2.
	badMorning := 3*cfg.BadDropRate/cfg.GoodDropRate - 2
	timeMult := func(phone int, timeVal int) float64 {
		if phone != 1 {
			return 1
		}
		// Bad phone's base is set to GoodDropRate for the time model.
		if timeVal == 0 {
			return badMorning
		}
		return 1
	}

	// Proportional attribute: multiplies every phone's rate identically
	// (Fig. 2(A)) — expected, therefore uninteresting.
	propMult := []float64{0.6, 1.0, 1.4}

	// Secondary effect: the bad phone is mildly worse on "highway".
	secMult := func(phone int, sec int) float64 {
		if phone == 1 && sec == 3 {
			return 1.5
		}
		return 1
	}

	codes := make([]int32, len(attrs))
	for r := 0; r < cfg.Records; r++ {
		phone := rng.Intn(cfg.NumPhones)
		timeVal := rng.Intn(len(timeValues))
		prop := rng.Intn(3)
		sec := rng.Intn(4)

		effBase := base[phone]
		if phone == 1 {
			effBase = cfg.GoodDropRate // time model carries the excess
		}
		p := effBase * propMult[prop] * timeMult(phone, timeVal) * secMult(phone, sec)
		if p > 0.95 {
			p = 0.95
		}

		var class int32
		u := rng.Float64()
		switch {
		case u < p:
			class = 1 // dropped
		case u < p+cfg.SetupFailRate:
			class = 2 // setup failed
		default:
			class = 0 // ok
		}

		codes[0] = int32(phone)
		codes[1] = int32(timeVal)
		codes[2] = int32(prop)
		codes[3] = int32(sec)
		codes[4] = int32(phone) // hardware version tied to phone: property attribute
		for i := 0; i < cfg.NoiseAttrs; i++ {
			if cfg.MissingRate > 0 && rng.Float64() < cfg.MissingRate {
				codes[5+i] = dataset.Missing
				continue
			}
			codes[5+i] = int32(rng.Intn(cfg.NoiseCardinality))
		}
		codes[classIdx] = class
		if err := b.AddCodedRow(codes, nil); err != nil {
			return nil, GroundTruth{}, err
		}
	}
	ds, err := b.Build()
	if err != nil {
		return nil, GroundTruth{}, err
	}
	return ds, gt, nil
}

// CaseStudyConfig reproduces the Section V.B case study: a 41-attribute
// call log (one class attribute + 40 others, of which the planted five
// plus 35 noise parameters).
func CaseStudyConfig(seed int64, records int) CallLogConfig {
	return CallLogConfig{
		Seed:       seed,
		Records:    records,
		NumPhones:  8,
		NoiseAttrs: 35,
	}
}
